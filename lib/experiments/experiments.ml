(* Regeneration of every table and figure in the paper's evaluation, plus the
   ablations listed in DESIGN.md. Each experiment prints the same rows or
   series the paper reports; EXPERIMENTS.md records paper-vs-measured. *)

let costs = Analysis.Costs.standalone
let kernel_costs = Analysis.Costs.vkernel
let ladder = Workload.Sizes.paper_ladder_packets

let run_sim ?(params = Netmodel.Params.standalone) ?trace ?network_error suite packets =
  Simnet.Driver.run ~params ?trace ?network_error ~suite
    ~config:(Protocol.Config.make ~total_packets:packets ())
    ()

let elapsed ?params ?network_error suite packets =
  Simnet.Driver.elapsed_ms (run_sim ?params ?network_error suite packets)

let saw = Protocol.Suite.Stop_and_wait
let sw = Protocol.Suite.Sliding_window { window = max_int }
let blast = Protocol.Suite.Blast Protocol.Blast.Go_back_n

let section ppf title =
  Format.fprintf ppf "@.=== %s ===@." title

(* ------------------------------------------------------------- Table 1 *)

let table1 ppf =
  section ppf "Table 1: standalone error-free transmission times (ms)";
  let rows =
    List.map
      (fun n ->
        [
          Printf.sprintf "%d KiB" n;
          Report.Table.fmt_ms (elapsed saw n);
          Report.Table.fmt_ms (elapsed sw n);
          Report.Table.fmt_ms (elapsed blast n);
          Report.Table.fmt_ms (Analysis.Error_free.blast costs ~packets:n);
        ])
      ladder
  in
  Format.fprintf ppf "%s@."
    (Report.Table.render
       ~header:[ "size"; "stop-and-wait"; "sliding window"; "blast"; "blast (formula)" ]
       ~rows ());
  let ratio = elapsed saw 64 /. elapsed blast 64 in
  Format.fprintf ppf "64 KiB stop-and-wait / blast ratio: %.2fx (paper: ~2x)@." ratio

(* ------------------------------------------------------------- Table 2 *)

let table2 ppf =
  section ppf "Table 2: breakdown of a 1 KiB reliable exchange";
  let trace = Eventsim.Trace.create () in
  let result = run_sim ~trace blast 1 in
  let totals = Eventsim.Trace.total_by_kind trace in
  let get kind =
    Eventsim.Time.span_to_ms (Option.value ~default:Eventsim.Time.span_zero (List.assoc_opt kind totals))
  in
  let order =
    [
      ("Copy data into sender's interface", "copy-data-in");
      ("Transmit data", "transmit-data");
      ("Copy data out of receiver's interface", "copy-data-out");
      ("Copy ack into receiver's interface", "copy-ack-in");
      ("Transmit ack", "transmit-ack");
      ("Copy ack out of sender's interface", "copy-ack-out");
    ]
  in
  let rows =
    List.map (fun (label, kind) -> [ label; Report.Table.fmt_ms (get kind) ]) order
  in
  let computed = List.fold_left (fun acc (_, kind) -> acc +. get kind) 0.0 order in
  let device_latency = 2.0 *. 0.085 in
  let rows =
    rows
    @ [
        [ "Total (computed)"; Report.Table.fmt_ms computed ];
        [ "Device/propagation residual (modelled)"; Report.Table.fmt_ms device_latency ];
        [ "Observed elapsed (simulated)"; Report.Table.fmt_ms (Simnet.Driver.elapsed_ms result) ];
      ]
  in
  Format.fprintf ppf "%s@."
    (Report.Table.render ~header:[ "operation"; "time (ms)" ] ~rows ());
  let copies = get "copy-data-in" +. get "copy-data-out" +. get "copy-ack-in" +. get "copy-ack-out" in
  Format.fprintf ppf "copies account for %s of the exchange (paper: 75%%)@."
    (Report.Table.fmt_pct (copies /. Simnet.Driver.elapsed_ms result));
  Format.fprintf ppf "network transmission accounts for %s (paper: 21%%)@."
    (Report.Table.fmt_pct ((get "transmit-data" +. get "transmit-ack") /. Simnet.Driver.elapsed_ms result))

(* ------------------------------------------------------------- Table 3 *)

let table3 ppf =
  section ppf "Table 3: V kernel MoveTo times (kernel constants, ms)";
  let params = Netmodel.Params.vkernel in
  let rows =
    List.map
      (fun n ->
        [
          Printf.sprintf "%d KiB" n;
          Report.Table.fmt_ms (elapsed ~params saw n);
          Report.Table.fmt_ms (elapsed ~params blast n);
          Report.Table.fmt_ms (Analysis.Error_free.blast kernel_costs ~packets:n);
        ])
      ladder
  in
  Format.fprintf ppf "%s@."
    (Report.Table.render
       ~header:[ "size"; "stop-and-wait"; "blast (MoveTo)"; "blast (formula)" ]
       ~rows ());
  Format.fprintf ppf "anchors: To(1) = %s ms (paper: 5.9), To(64) = %s ms (paper: 173)@."
    (Report.Table.fmt_ms (elapsed ~params blast 1))
    (Report.Table.fmt_ms (elapsed ~params blast 64))

(* ------------------------------------------------------------ Figure 1 *)

let fig1 ppf =
  section ppf "Figure 1: stop-and-wait, sliding window and blast protocols";
  (* The paper's schematic, regenerated as real traces: two packets under
     each protocol, so the message pattern (not just the timing) is visible. *)
  let render name suite =
    let trace = Eventsim.Trace.create () in
    ignore (run_sim ~trace suite 2);
    Format.fprintf ppf "@.--- %s ---@.%s@." name (Report.Timeline.render ~width:90 trace)
  in
  render "stop-and-wait: data, ack, data, ack" saw;
  render "sliding window: acks overlap the next data packet" sw;
  render "blast: the whole train, one ack" blast

(* ------------------------------------------------------------ Figure 2 *)

let fig2 ppf =
  section ppf "Figure 2: network packet transmission timeline (1 KiB + ack)";
  let trace = Eventsim.Trace.create () in
  ignore (run_sim ~trace blast 1);
  Format.fprintf ppf "%s@." (Report.Timeline.render trace)

(* ------------------------------------------------------------ Figure 3 *)

let fig3 ppf =
  section ppf "Figure 3: three-packet transfers under each protocol";
  let render name ?params suite =
    let trace = Eventsim.Trace.create () in
    ignore (run_sim ?params ~trace suite 3);
    Format.fprintf ppf "@.--- %s ---@.%s@." name (Report.Timeline.render trace)
  in
  render "3.a stop-and-wait" saw;
  render "3.b blast" blast;
  render "3.c sliding window" sw;
  render "3.d double-buffered interface, blast"
    ~params:(Netmodel.Params.double_buffered Netmodel.Params.standalone)
    blast

(* ------------------------------------------------------------ Figure 4 *)

let fig4 ppf =
  section ppf "Figure 4: elapsed time vs transfer size, per protocol";
  let ns = List.init 64 (fun i -> i + 1) in
  let series name f = { Report.Chart.name; points = List.map (fun n -> (float_of_int n, f n)) ns } in
  let chart =
    Report.Chart.render ~x_label:"packets" ~y_label:"elapsed (ms)"
      [
        series "stop-and-wait" (fun n -> Analysis.Error_free.stop_and_wait costs ~packets:n);
        series "sliding window" (fun n -> Analysis.Error_free.sliding_window costs ~packets:n);
        series "blast" (fun n -> Analysis.Error_free.blast costs ~packets:n);
        series "double buffered" (fun n -> Analysis.Error_free.double_buffered costs ~packets:n);
      ]
  in
  Format.fprintf ppf "%s@." chart;
  (* Spot-check the analytic curves against the event simulator. *)
  let rows =
    List.map
      (fun n ->
        [
          string_of_int n;
          Report.Table.fmt_ms (elapsed saw n);
          Report.Table.fmt_ms (elapsed sw n);
          Report.Table.fmt_ms (elapsed blast n);
          Report.Table.fmt_ms
            (elapsed ~params:(Netmodel.Params.double_buffered Netmodel.Params.standalone) blast n);
        ])
      [ 8; 24; 48; 64 ]
  in
  Format.fprintf ppf "simulated spot checks:@.%s@."
    (Report.Table.render
       ~header:[ "packets"; "SAW"; "SW"; "blast"; "double-buffered" ]
       ~rows ())

(* ------------------------------------------------------------ Figure 5 *)

let fig5 ppf =
  section ppf "Figure 5: expected time of a 64 KiB transfer vs error rate";
  let packets = 64 in
  let t0_blast = Analysis.Error_free.blast kernel_costs ~packets in
  let t0_saw1 = Analysis.Error_free.stop_and_wait kernel_costs ~packets:1 in
  let pns = Workload.Sizes.pn_ladder in
  let curve name f = { Report.Chart.name; points = List.map (fun pn -> (pn, f pn)) pns } in
  let saw_curve factor pn =
    Analysis.Expected_time.stop_and_wait ~t0_packet:t0_saw1 ~tr:(factor *. t0_saw1) ~pn ~packets
  in
  let blast_curve factor pn =
    Analysis.Expected_time.blast ~t0:t0_blast ~tr:(factor *. t0_blast) ~pn ~packets
  in
  Format.fprintf ppf "%s@."
    (Report.Chart.render ~log_x:true ~x_label:"pn" ~y_label:"E[T] (ms)"
       [
         curve "SAW, Tr = 100 x To(1)" (saw_curve 100.0);
         curve "SAW, Tr = 10 x To(1)" (saw_curve 10.0);
         curve "blast, Tr = 10 x To(D)" (blast_curve 10.0);
         curve "blast, Tr = To(D)" (blast_curve 1.0);
       ]);
  (* Monte-Carlo validation of the analytic curves at selected rates. *)
  let timing = Montecarlo.Runner.blast_timing kernel_costs ~tr:t0_blast in
  let rows =
    List.map
      (fun pn ->
        let mc =
          Montecarlo.Runner.sample
            ~sampler:(fun rng -> Montecarlo.Runner.iid rng ~loss:pn)
            ~timing
            ~suite:(Protocol.Suite.Blast Protocol.Blast.Full_retransmit)
            ~packets ~trials:600 ~seed:11 ()
        in
        let mc = mc.Montecarlo.Runner.elapsed_ms in
        [
          Printf.sprintf "%g" pn;
          Report.Table.fmt_ms (blast_curve 1.0 pn);
          Report.Table.fmt_ms (Stats.Summary.mean mc);
          Report.Table.fmt_ms (saw_curve 10.0 pn);
        ])
      [ 1e-5; 1e-4; 1e-3; 1e-2 ]
  in
  Format.fprintf ppf
    "blast with full retransmission, Tr = To(D): analytic vs Monte-Carlo@.%s@."
    (Report.Table.render
       ~header:[ "pn"; "blast analytic"; "blast MC"; "SAW analytic (Tr=10xTo(1))" ]
       ~rows ());
  Format.fprintf ppf
    "operating region: network errors ~1e-5, interface errors ~1e-4 — both on the flat part of the blast curve.@."

(* ------------------------------------------------------------ Figure 6 *)

let fig6 ppf =
  section ppf "Figure 6: standard deviation of a 64 KiB MoveTo vs error rate";
  let packets = 64 in
  let t0 = Analysis.Error_free.blast kernel_costs ~packets in
  let timing = Montecarlo.Runner.blast_timing kernel_costs ~tr:t0 in
  let rates = [ 1e-5; 1e-4; 1e-3; 1e-2 ] in
  let sigma strategy pn trials =
    Stats.Summary.stddev
      (Montecarlo.Runner.sample
         ~sampler:(fun rng -> Montecarlo.Runner.iid rng ~loss:pn)
         ~timing ~suite:(Protocol.Suite.Blast strategy) ~packets ~trials ~seed:12 ())
        .Montecarlo.Runner.elapsed_ms
  in
  let rows =
    List.map
      (fun pn ->
        let pc = Analysis.Expected_time.blast_failure ~pn ~packets in
        (* Rare-event regimes need more trials for a usable sigma estimate. *)
        let trials = if pn < 1e-4 then 12_000 else 1_500 in
        [
          Printf.sprintf "%g" pn;
          Report.Table.fmt_ms (Analysis.Variance.full_retransmit ~t0 ~tr:t0 ~pc);
          Report.Table.fmt_ms (sigma Protocol.Blast.Full_retransmit pn trials);
          Report.Table.fmt_ms (sigma Protocol.Blast.Full_retransmit_nack pn trials);
          Report.Table.fmt_ms (sigma Protocol.Blast.Go_back_n pn trials);
          Report.Table.fmt_ms (sigma Protocol.Blast.Selective pn trials);
        ])
      rates
  in
  Format.fprintf ppf "%s@."
    (Report.Table.render
       ~header:
         [
           "pn";
           "full (analytic)";
           "full (MC)";
           "full+nack (MC)";
           "go-back-n (MC)";
           "selective (MC)";
         ]
       ~rows ());
  let curve name strategy =
    {
      Report.Chart.name;
      points = List.map (fun pn -> (pn, sigma strategy pn 800)) rates;
    }
  in
  Format.fprintf ppf "%s@."
    (Report.Chart.render ~log_x:true ~log_y:true ~x_label:"pn" ~y_label:"sigma (ms)"
       [
         curve "full retransmit, Tr=To(D)" Protocol.Blast.Full_retransmit;
         curve "full retransmit + nack" Protocol.Blast.Full_retransmit_nack;
         curve "go-back-n" Protocol.Blast.Go_back_n;
         curve "selective" Protocol.Blast.Selective;
       ]);
  Format.fprintf ppf
    "ranking matches the paper: full >> full+nack > go-back-n >= selective;@.go-back-n is the strategy of choice (simple, near-selective performance).@."

(* ------------------------------------------------------- in-text numbers *)

let intext ppf =
  section ppf "In-text numbers";
  let k = Analysis.Costs.paper_rounded in
  Format.fprintf ppf
    "naive (transmission-only) 64 KiB estimates: SAW %.3f ms, SW %.3f ms, blast %.3f ms@."
    (Analysis.Error_free.naive_stop_and_wait k ~packets:64)
    (Analysis.Error_free.naive_sliding_window k ~packets:64)
    (Analysis.Error_free.naive_blast k ~packets:64);
  Format.fprintf ppf "  (paper: 57.024 / 55.764 / 52.551 ms — <10%% apart)@.";
  Format.fprintf ppf "measured 64 KiB: SAW %s ms vs blast %s ms — %.2fx, not <1.1x@."
    (Report.Table.fmt_ms (elapsed saw 64))
    (Report.Table.fmt_ms (elapsed blast 64))
    (elapsed saw 64 /. elapsed blast 64);
  let result = run_sim blast 64 in
  Format.fprintf ppf "network utilization of a 64 KiB blast: %s (paper: 38%%)@."
    (Report.Table.fmt_pct result.Simnet.Driver.utilization);
  Format.fprintf ppf "V kernel blast constants: C = 1.83 ms, Ca = 0.67 ms (vs 1.35 / 0.17 standalone)@."

(* ----------------------------------------------------------- ablations *)

let ablation_buffers ppf =
  section ppf "Ablation: interface buffering (paper argues a 3rd buffer is useless)";
  let base = Netmodel.Params.standalone in
  let double = Netmodel.Params.double_buffered base in
  let triple = { double with Netmodel.Params.tx_buffers = 3; rx_buffers = 3 } in
  let rows =
    List.map
      (fun n ->
        [
          string_of_int n;
          Report.Table.fmt_ms (elapsed ~params:base blast n);
          Report.Table.fmt_ms (elapsed ~params:double blast n);
          Report.Table.fmt_ms (elapsed ~params:triple blast n);
        ])
      [ 8; 16; 32; 64 ]
  in
  Format.fprintf ppf "%s@."
    (Report.Table.render
       ~header:[ "packets"; "single buffer"; "double buffer"; "triple buffer" ]
       ~rows ());
  Format.fprintf ppf "double = triple, as predicted (both C and T are constant).@."

let ablation_window ppf =
  section ppf "Ablation: sliding-window size (64 KiB transfer)";
  let rows =
    List.map
      (fun window ->
        [
          string_of_int window;
          Report.Table.fmt_ms (elapsed (Protocol.Suite.Sliding_window { window }) 64);
        ])
      [ 1; 2; 4; 8; 16; 32; 64 ]
  in
  Format.fprintf ppf "%s@."
    (Report.Table.render ~header:[ "window"; "elapsed (ms)" ] ~rows ());
  Format.fprintf ppf
    "window 1 behaves like stop-and-wait (%s ms); beyond ~2 the window never closes.@."
    (Report.Table.fmt_ms (elapsed saw 64))

let ablation_multiblast ppf =
  section ppf "Ablation: multi-blast chunk size for a 16 MiB dump";
  let packets = Workload.Sizes.dump_bytes / 1024 in
  let t0 = Analysis.Error_free.blast kernel_costs ~packets in
  let timing = Montecarlo.Runner.blast_timing kernel_costs ~tr:(0.1 *. t0) in
  let chunks = [ 64; 256; 1024; packets ] in
  let rates = [ 0.0; 1e-4; 1e-3 ] in
  let cell chunk pn =
    let suite =
      if chunk >= packets then Protocol.Suite.Blast Protocol.Blast.Full_retransmit_nack
      else
        Protocol.Suite.Multi_blast
          { strategy = Protocol.Blast.Full_retransmit_nack; chunk_packets = chunk }
    in
    let summary =
      if pn = 0.0 then begin
        let elapsed =
          Montecarlo.Runner.one_transfer ~drops:(fun () -> false) ~timing ~suite ~packets ()
        in
        let s = Stats.Summary.create () in
        Stats.Summary.add s elapsed;
        s
      end
      else
        (Montecarlo.Runner.sample
           ~sampler:(fun rng -> Montecarlo.Runner.iid rng ~loss:pn)
           ~timing ~suite ~packets ~trials:30 ~seed:13 ())
          .Montecarlo.Runner.elapsed_ms
    in
    Printf.sprintf "%.0f" (Stats.Summary.mean summary)
  in
  let rows =
    List.map
      (fun chunk ->
        (if chunk >= packets then "single blast" else string_of_int chunk)
        :: List.map (cell chunk) rates)
      chunks
  in
  Format.fprintf ppf "%s@."
    (Report.Table.render
       ~header:[ "chunk (packets)"; "pn=0 (ms)"; "pn=1e-4 (ms)"; "pn=1e-3 (ms)" ]
       ~rows ());
  Format.fprintf ppf
    "error-free, one big blast is cheapest; under loss, chunking caps the retransmission cost —@.the paper's rationale for multiple blasts on very large transfers.@."

let ablation_burst ppf =
  section ppf "Ablation: burst (Gilbert-Elliott) vs iid losses at equal average rate";
  let packets = 64 in
  let t0 = Analysis.Error_free.blast kernel_costs ~packets in
  let timing = Montecarlo.Runner.blast_timing kernel_costs ~tr:t0 in
  let mean_loss = 1e-3 in
  let iid_sampler rng = Montecarlo.Runner.iid rng ~loss:mean_loss in
  let burst_sampler rng =
    let model =
      Netmodel.Error_model.matched_gilbert_elliott rng ~mean_loss ~burst_length:8.0
    in
    fun () -> Netmodel.Error_model.drops model
  in
  let row strategy =
    let sample sampler =
      (Montecarlo.Runner.sample ~sampler ~timing ~suite:(Protocol.Suite.Blast strategy)
         ~packets ~trials:2000 ~seed:14 ())
        .Montecarlo.Runner.elapsed_ms
    in
    let iid = sample iid_sampler and burst = sample burst_sampler in
    [
      Protocol.Blast.strategy_name strategy;
      Report.Table.fmt_ms (Stats.Summary.mean iid);
      Report.Table.fmt_ms (Stats.Summary.stddev iid);
      Report.Table.fmt_ms (Stats.Summary.mean burst);
      Report.Table.fmt_ms (Stats.Summary.stddev burst);
    ]
  in
  let rows = List.map row Protocol.Blast.all_strategies in
  Format.fprintf ppf "%s@."
    (Report.Table.render
       ~header:[ "strategy"; "iid mean"; "iid sigma"; "burst mean"; "burst sigma" ]
       ~rows ());
  Format.fprintf ppf
    "bursts concentrate losses in fewer trains: fewer transfers are hit, but go-back-n loses@.less of its advantage over full retransmission when a burst wipes out a contiguous run.@."

let ablation_dma ppf =
  section ppf "Ablation: DMA interfaces (Section 2.1.3's discussion)";
  (* The paper's experience: the Excelan's on-board 8088 copies much slower
     than the 68000 host, so elapsed time does not improve — but the host
     processor is freed for other work. *)
  let measure params =
    let result =
      Simnet.Driver.run ~params ~suite:blast
        ~config:(Protocol.Config.make ~total_packets:64 ())
        ()
    in
    let ms = Simnet.Driver.elapsed_ms result in
    let busy = Eventsim.Time.span_to_ms result.Simnet.Driver.sender_cpu_busy in
    (ms, busy /. ms)
  in
  let host = Netmodel.Params.standalone in
  let rows =
    List.map
      (fun (label, params) ->
        let ms, cpu = measure params in
        [ label; Report.Table.fmt_ms ms; Report.Table.fmt_pct cpu ])
      [
        ("host CPU copies (3-Com, busy-wait)", host);
        ("host CPU copies, double buffered", Netmodel.Params.double_buffered host);
        ("DMA, slow on-board processor (2x)", Netmodel.Params.with_dma host);
        ("DMA, copies at host speed (1x)", Netmodel.Params.with_dma ~copy_scale:1.0 host);
      ]
  in
  Format.fprintf ppf "%s@."
    (Report.Table.render
       ~header:[ "interface"; "64 KiB blast (ms)"; "sender host-CPU busy" ]
       ~rows ());
  Format.fprintf ppf
    "a slow DMA engine makes the transfer slower, not faster (the Excelan experience);@.what it buys is host CPU time — exactly the paper's reading.@."

let ablation_load ppf =
  section ppf
    "Ablation: background load on a CSMA/CD medium (the paper's low-load caveat)";
  let loads = [ 0.0; 0.2; 0.4; 0.6 ] in
  let measure suite load =
    let trials = if load = 0.0 then 1 else 5 in
    let summary = Stats.Summary.create () in
    let collisions = ref 0 in
    for trial = 0 to trials - 1 do
      let seed = 400 + (trial * 17) in
      let arbiter =
        Netmodel.Arbiter.csma_cd
          ~rng:(Stats.Rng.create ~seed)
          ~propagation:Netmodel.Params.standalone.Netmodel.Params.propagation ()
      in
      let background wire =
        if load > 0.0 then
          ignore
            (Simnet.Load.attach
               ~rng:(Stats.Rng.create ~seed:(seed + 1))
               ~offered_load:load wire)
      in
      let result =
        Simnet.Driver.run ~arbiter ~background ~suite
          ~config:(Protocol.Config.make ~total_packets:64 ())
          ()
      in
      Stats.Summary.add summary (Simnet.Driver.elapsed_ms result);
      collisions := !collisions + (Netmodel.Arbiter.stats arbiter).Netmodel.Arbiter.collisions
    done;
    (Stats.Summary.mean summary, !collisions / trials)
  in
  let rows =
    List.map
      (fun load ->
        let saw_ms, _ = measure saw load in
        let blast_ms, blast_collisions = measure blast load in
        [
          Report.Table.fmt_pct load;
          Report.Table.fmt_ms saw_ms;
          Report.Table.fmt_ms blast_ms;
          Printf.sprintf "%.2fx" (saw_ms /. blast_ms);
          string_of_int blast_collisions;
        ])
      loads
  in
  Format.fprintf ppf "%s@."
    (Report.Table.render
       ~header:
         [ "offered load"; "SAW 64 KiB (ms)"; "blast 64 KiB (ms)"; "SAW/blast"; "collisions" ]
       ~rows ());
  Format.fprintf ppf
    "blast keeps its ~1.8x advantage well past the paper's idle-network regime; contention@.inflates both protocols roughly proportionally until the medium saturates.@."

let ablation_rtt ppf =
  section ppf
    "Ablation: fixed vs adaptive retransmission timeout (64 KiB blast, full retransmit)";
  (* Timeout policy only matters for the timeout-driven strategy: with a NACK
     or go-back-n, losses are repaired by the receiver's reply and the timer
     almost never fires. Full retransmission without NACK is the case where
     Figure 6 shows the choice of Tr dominating the variance. *)
  let t0_ns = 173_000_000 in
  let measure ~loss variant =
    let summary = Stats.Summary.create () in
    (* The estimator persists across transfers, as a kernel's per-peer RTT
       state would: a one-shot blast has only its final ack to learn from. *)
    let shared_rtt = Protocol.Rtt.create ~initial_ns:(10 * t0_ns) () in
    for seed = 1 to 15 do
      let rng = Stats.Rng.create ~seed:(seed * 131) in
      let network_error = Netmodel.Error_model.iid rng ~loss in
      let retransmit_ns, rtt =
        match variant with
        | `Fixed factor -> (factor * t0_ns, None)
        | `Adaptive -> (10 * t0_ns, Some shared_rtt)
      in
      let result =
        Simnet.Driver.run ~params:Netmodel.Params.vkernel ~network_error ?rtt
          ~suite:(Protocol.Suite.Blast Protocol.Blast.Full_retransmit)
          ~config:
            (Protocol.Config.make
               ~tuning:(Protocol.Tuning.fixed ~retransmit_ns ())
               ~total_packets:64 ())
          ()
      in
      Stats.Summary.add summary (Simnet.Driver.elapsed_ms result)
    done;
    summary
  in
  let rows =
    List.concat_map
      (fun loss ->
        List.map
          (fun (label, variant) ->
            let s = measure ~loss variant in
            [
              Printf.sprintf "%g" loss;
              label;
              Report.Table.fmt_ms (Stats.Summary.mean s);
              Report.Table.fmt_ms (Stats.Summary.stddev s);
            ])
          [
            ("Tr = To(D)", `Fixed 1);
            ("Tr = 10 x To(D)", `Fixed 10);
            ("adaptive (Jacobson/Karn)", `Adaptive);
          ])
      [ 2e-3; 1e-2 ]
  in
  Format.fprintf ppf "%s@."
    (Report.Table.render ~header:[ "pn"; "timeout policy"; "mean (ms)"; "sigma (ms)" ] ~rows ());
  Format.fprintf ppf
    "a badly chosen fixed interval is several times worse once timeouts drive repair;@.the persistent per-peer estimator self-tunes to the well-chosen value after one@.transfer, without knowing To(D) in advance.@."

let ablation_pagesize ppf =
  section ppf "Ablation: file-access page size (the paper's Section 1 motivation)";
  (* A workstation reads a 64 KiB file from a file server via MoveFrom, one
     page at a time: the per-page handshake and ack amortize better with
     large pages. *)
  let file_bytes = 65_536 in
  let read_with_page page_bytes =
    let sim = Eventsim.Sim.create () in
    let wire = Netmodel.Wire.create sim ~params:Netmodel.Params.vkernel () in
    let server = Vkernel.Kernel.create wire ~name:"server" in
    let client = Vkernel.Kernel.create wire ~name:"client" in
    let file = Bytes.init file_bytes (fun i -> Char.chr (i land 0xFF)) in
    let segment = Vkernel.Kernel.register_segment server ~rights:Vkernel.Kernel.Read_only file in
    let elapsed = ref 0.0 in
    Eventsim.Proc.spawn (Eventsim.Proc.env sim) (fun () ->
        let started = Eventsim.Sim.now sim in
        let pages = file_bytes / page_bytes in
        for page = 0 to pages - 1 do
          match
            Vkernel.Kernel.move_from client ~dst:(Vkernel.Kernel.address server) ~segment
              ~offset:(page * page_bytes) ~len:page_bytes
          with
          | Ok _ -> ()
          | Error e -> Format.kasprintf failwith "page read failed: %a" Vkernel.Kernel.pp_error e
        done;
        elapsed :=
          Eventsim.Time.span_to_ms (Eventsim.Time.diff (Eventsim.Sim.now sim) started));
    Eventsim.Sim.run sim;
    !elapsed
  in
  let rows =
    List.map
      (fun page_kib ->
        let ms = read_with_page (page_kib * 1024) in
        [
          Printf.sprintf "%d KiB" page_kib;
          string_of_int (file_bytes / (page_kib * 1024));
          Report.Table.fmt_ms ms;
          Printf.sprintf "%.2f" (ms /. 172.8);
        ])
      [ 1; 4; 16; 64 ]
  in
  Format.fprintf ppf "%s@."
    (Report.Table.render
       ~header:[ "page size"; "requests"; "total elapsed (ms)"; "vs one 64 KiB MoveFrom" ]
       ~rows ());
  Format.fprintf ppf
    "large pages amortize the per-request handshake and per-packet kernel overhead —@.the observation ([10,12,15]) that motivates the whole paper.@."

let ablation_overrun ppf =
  section ppf
    "Ablation: receiver overruns under full-speed blast (the 3-Com failure mode)";
  (* The paper attributes its 1e-4 'interface error' rate to interfaces
     dropping packets when driven at full speed. Mechanistically: if the
     receive buffer is still occupied by protocol software when the next
     frame lands, the frame is lost. Sweep that software cost. *)
  let t_ms = 0.8192 in
  let measure extra_ms =
    let params =
      {
        Netmodel.Params.standalone with
        Netmodel.Params.rx_service_overhead = Eventsim.Time.span_ms extra_ms;
      }
    in
    let result =
      Simnet.Driver.run ~params ~suite:blast
        ~config:
          (Protocol.Config.make
             ~tuning:(Protocol.Tuning.fixed ~retransmit_ns:20_000_000 ())
             ~total_packets:64 ())
        ()
    in
    (result, Simnet.Driver.elapsed_ms result)
  in
  let rows =
    List.map
      (fun factor ->
        let extra = factor *. t_ms in
        let result, ms = measure extra in
        let w = result.Simnet.Driver.wire in
        [
          Printf.sprintf "%.2f ms (%.1f x T)" extra factor;
          string_of_int w.Netmodel.Wire.lost_overrun;
          string_of_int result.Simnet.Driver.sender.Protocol.Counters.retransmitted_data;
          Report.Table.fmt_ms ms;
        ])
      [ 0.0; 0.5; 1.0; 1.5; 2.0 ]
  in
  Format.fprintf ppf "%s@."
    (Report.Table.render
       ~header:
         [ "rx software per packet"; "overrun drops"; "retransmissions"; "64 KiB blast (ms)" ]
       ~rows ());
  Format.fprintf ppf
    "once per-packet receive software exceeds the pipeline slack, the interface itself@.drops packets and go-back-n pays for them — the mechanism behind the paper's@.elevated full-speed error rate.@."

let ablation_pacing ppf =
  section ppf "Ablation: sender pacing vs retransmission for a slow receiver";
  (* When the receiver's per-packet software exceeds the pipeline slack
     (ablation-overrun), the sender can either thrash — overrun, drop,
     go-back-n — or slow down by a fixed inter-packet gap. *)
  let t_ms = 0.8192 in
  let slow_params extra_ms =
    {
      Netmodel.Params.standalone with
      Netmodel.Params.rx_service_overhead = Eventsim.Time.span_ms extra_ms;
    }
  in
  let measure ~extra_ms ~pacing_ms =
    let pacing =
      if pacing_ms > 0.0 then Some (Eventsim.Time.span_ms pacing_ms) else None
    in
    Simnet.Driver.run ~params:(slow_params extra_ms) ?pacing ~suite:blast
      ~config:
        (Protocol.Config.make
           ~tuning:(Protocol.Tuning.fixed ~retransmit_ns:20_000_000 ())
           ~total_packets:64 ())
      ()
  in
  let extra = 1.5 *. t_ms in
  let rows =
    List.map
      (fun pacing_ms ->
        let result = measure ~extra_ms:extra ~pacing_ms in
        let w = result.Simnet.Driver.wire in
        [
          (if pacing_ms = 0.0 then "none (thrash + go-back-n)"
           else Printf.sprintf "%.2f ms/packet" pacing_ms);
          string_of_int w.Netmodel.Wire.lost_overrun;
          string_of_int result.Simnet.Driver.sender.Protocol.Counters.retransmitted_data;
          Report.Table.fmt_ms (Simnet.Driver.elapsed_ms result);
        ])
      [ 0.0; 0.25 *. t_ms; 0.5 *. t_ms; 0.75 *. t_ms; 1.0 *. t_ms ]
  in
  Format.fprintf ppf
    "receiver software: %.2f ms/packet (1.5 x T beyond the copy), 64 KiB blast@." extra;
  Format.fprintf ppf "%s@."
    (Report.Table.render
       ~header:[ "sender pacing"; "overrun drops"; "retransmissions"; "elapsed (ms)" ]
       ~rows ());
  Format.fprintf ppf
    "pacing at ~the receiver's deficit eliminates overruns and beats go-back-n repair@.by ~2x — rate-based flow control, the road the field eventually took.@."

let udp ppf =
  section ppf "UDP loopback validation (real sockets, injected loss)";
  (* The 0-loss go-back-n rows show real receiver-side socket-buffer
     overruns — the modern re-run of the paper's full-speed interface
     errors; the paced row avoids them instead of repairing them. *)
  let rng = Stats.Rng.create ~seed:99 in
  let data = String.init 262_144 (fun _ -> Char.chr (Stats.Rng.int rng 256)) in
  let run ?pacing_ns name suite loss =
    let pacing =
      match pacing_ns with
      | Some ns -> Protocol.Tuning.Fixed_gap ns
      | None -> Protocol.Tuning.No_pacing
    in
    let ctx =
      {
        (Sockets.Io_ctx.default ()) with
        Sockets.Io_ctx.tuning =
          Protocol.Tuning.fixed ~retransmit_ns:20_000_000 ~pacing ();
      }
    in
    let receiver_socket, receiver_address = Sockets.Udp.create_socket () in
    let sender_socket, _ = Sockets.Udp.create_socket () in
    let received = ref None in
    let thread =
      Thread.create
        (fun () ->
          received :=
            Some
              (Sockets.Peer.serve_one ~ctx
                 ~lossy:(Sockets.Lossy.create ~seed:3 ~tx_loss:loss ~rx_loss:0.0)
                 ~socket:receiver_socket ~suite ()))
        ()
    in
    let result =
      Sockets.Peer.send ~ctx
        ~lossy:(Sockets.Lossy.create ~seed:4 ~tx_loss:loss ~rx_loss:0.0)
        ~socket:sender_socket ~peer:receiver_address ~suite ~data ()
    in
    Thread.join thread;
    Sockets.Udp.close receiver_socket;
    Sockets.Udp.close sender_socket;
    let intact =
      match !received with
      | Some r -> String.equal r.Sockets.Peer.data data
      | None -> false
    in
    [
      name;
      Printf.sprintf "%g" loss;
      Printf.sprintf "%.1f" (float_of_int result.Sockets.Peer.elapsed_ns /. 1e6);
      string_of_int result.Sockets.Peer.counters.Protocol.Counters.retransmitted_data;
      (if intact && result.Sockets.Peer.outcome = Protocol.Action.Success then "yes" else "NO");
    ]
  in
  let rows =
    [
      run "blast/go-back-n" (Protocol.Suite.Blast Protocol.Blast.Go_back_n) 0.0;
      run ~pacing_ns:30_000 "blast/gbn, paced 30us" (Protocol.Suite.Blast Protocol.Blast.Go_back_n)
        0.0;
      run "blast/go-back-n" (Protocol.Suite.Blast Protocol.Blast.Go_back_n) 0.01;
      run "blast/selective" (Protocol.Suite.Blast Protocol.Blast.Selective) 0.01;
      run "multi-blast/gbn(64)"
        (Protocol.Suite.Multi_blast { strategy = Protocol.Blast.Go_back_n; chunk_packets = 64 })
        0.01;
    ]
  in
  Format.fprintf ppf "%s@."
    (Report.Table.render
       ~header:[ "protocol"; "loss"; "elapsed (ms)"; "retx"; "intact" ]
       ~rows ())

let baseline_tcp ppf =
  section ppf "Baseline: blast-over-UDP vs kernel TCP on loopback";
  let rng = Stats.Rng.create ~seed:77 in
  let sizes = [ 65_536; 524_288 ] in
  let rows =
    List.map
      (fun bytes ->
        let data = String.init bytes (fun _ -> Char.chr (Stats.Rng.int rng 256)) in
        (* UDP blast path. *)
        let udp_ms =
          let receiver_socket, receiver_address = Sockets.Udp.create_socket () in
          let sender_socket, _ = Sockets.Udp.create_socket () in
          let thread =
            Thread.create
              (fun () -> ignore (Sockets.Peer.serve_one ~socket:receiver_socket ()))
              ()
          in
          let result =
            Sockets.Peer.send ~socket:sender_socket ~peer:receiver_address
              ~suite:(Protocol.Suite.Multi_blast
                        { strategy = Protocol.Blast.Go_back_n; chunk_packets = 64 })
              ~data ()
          in
          Thread.join thread;
          Sockets.Udp.close receiver_socket;
          Sockets.Udp.close sender_socket;
          float_of_int result.Sockets.Peer.elapsed_ns /. 1e6
        in
        (* Kernel TCP path. *)
        let tcp_ms =
          let listener, address = Sockets.Tcp_baseline.listen () in
          let received = ref "" in
          let thread =
            Thread.create
              (fun () -> received := Sockets.Tcp_baseline.serve_one ~socket:listener ())
              ()
          in
          let elapsed = Sockets.Tcp_baseline.send ~peer:address ~data () in
          Thread.join thread;
          (try Unix.close listener with Unix.Unix_error _ -> ());
          assert (String.equal !received data);
          float_of_int elapsed /. 1e6
        in
        [
          Printf.sprintf "%d KiB" (bytes / 1024);
          Report.Table.fmt_ms udp_ms;
          Report.Table.fmt_ms tcp_ms;
        ])
      sizes
  in
  Format.fprintf ppf "%s@."
    (Report.Table.render
       ~header:[ "size"; "blast/UDP (ms)"; "kernel TCP (ms)" ]
       ~rows ());
  Format.fprintf ppf
    "loopback wall-clock, so sanity context rather than science: the kernel's TCP@.wins (no user-space packetization, checksums or handshake), but the 1985 design@.driven entirely from user space stays within an order of magnitude of it.@."

let all : (string * (Format.formatter -> unit)) list =
  [
    ("fig1", fig1);
    ("table1", table1);
    ("table2", table2);
    ("table3", table3);
    ("fig2", fig2);
    ("fig3", fig3);
    ("fig4", fig4);
    ("fig5", fig5);
    ("fig6", fig6);
    ("intext", intext);
    ("ablation-buffers", ablation_buffers);
    ("ablation-window", ablation_window);
    ("ablation-multiblast", ablation_multiblast);
    ("ablation-burst", ablation_burst);
    ("ablation-load", ablation_load);
    ("ablation-rtt", ablation_rtt);
    ("ablation-dma", ablation_dma);
    ("ablation-pagesize", ablation_pagesize);
    ("ablation-overrun", ablation_overrun);
    ("ablation-pacing", ablation_pacing);
    ("udp", udp);
    ("baseline-tcp", baseline_tcp);
  ]
