let paper_ladder_packets = [ 1; 2; 4; 8; 16; 32; 64 ]
let paper_ladder_bytes = List.map (fun n -> n * 1024) paper_ladder_packets
let dump_bytes = 16 * 1024 * 1024

let file_sizes rng ~count =
  if count < 0 then invalid_arg "Sizes.file_sizes: negative count";
  let lo = log 512.0 and hi = log (1024.0 *. 1024.0) in
  List.init count (fun _ ->
      int_of_float (exp (Stats.Rng.uniform_float rng ~lo ~hi)))

let pn_ladder =
  List.concat_map
    (fun exponent ->
      List.map (fun mantissa -> mantissa *. (10.0 ** float_of_int exponent)) [ 1.0; 2.0; 5.0 ])
    [ -7; -6; -5; -4; -3; -2 ]
  @ [ 1e-1 ]
