(** Transfer-size workloads.

    The paper's measurements ladder from 1 KiB to 64 KiB in powers of two;
    the motivating workloads (Section 1) are page-sized file access and very
    large remote dumps. *)

val paper_ladder_bytes : int list
(** 1, 2, 4, ..., 64 KiB. *)

val paper_ladder_packets : int list
(** Same ladder, in 1 KiB packets: 1, 2, ..., 64. *)

val dump_bytes : int
(** A "remote file system dump"-scale transfer (16 MiB) used by the
    multi-blast experiments. *)

val file_sizes : Stats.Rng.t -> count:int -> int list
(** A heavy-tailed sample of file sizes (log-uniform between 512 B and
    1 MiB), a rough stand-in for a mid-80s file server's working set: the
    paper's motivation cites file access as the driving workload. *)

val pn_ladder : float list
(** The error-rate sweep of Figures 5 and 6: 1e-7 .. 1e-1, three points per
    decade. *)
