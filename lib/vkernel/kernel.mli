(** A V-kernel-style IPC kernel on one simulated workstation.

    Mirrors the paper's Section 2.2 setting: the kernel implements
    [MoveTo]/[MoveFrom] — network-transparent bulk moves into and out of
    pre-registered buffer segments — at the network interrupt level (here:
    simulation processes), demultiplexing concurrent transfers by transfer
    id and checking access rights before any data moves.

    Create kernels on a shared {!Netmodel.Wire.t} built with
    {!Netmodel.Params.vkernel} (so the copy costs include the header,
    demultiplexing and interrupt overhead the paper measured), register
    segments, then call {!move_to}/{!move_from} from simulation processes. *)

type t

type rights = Read_only | Write_only | Read_write

type error =
  | Unknown_segment
  | Access_denied
  | Out_of_bounds
  | Timed_out  (** the transfer or its handshake exhausted its attempts *)
  | No_such_process  (** a short message named an unregistered process *)

val pp_error : Format.formatter -> error -> unit

val create :
  ?suite:Protocol.Suite.t ->
  ?retransmit_ns:int ->
  ?max_attempts:int ->
  Packet.Message.t Netmodel.Wire.t ->
  name:string ->
  t
(** Attaches a kernel to the wire and starts its dispatcher process.
    [suite] is the transfer protocol used for the data movement (default:
    blast with go-back-n retransmission — the paper's choice). *)

val address : t -> int
val name : t -> string

val register_segment : t -> rights:rights -> Bytes.t -> int
(** Exposes a buffer to remote kernels; returns its segment id. The buffer
    is the recipient's pre-allocated storage — no intermediate copies. *)

val segment_contents : t -> int -> Bytes.t option

val move_to :
  t -> dst:int -> segment:int -> offset:int -> data:string -> (unit, error) result
(** [move_to k ~dst ~segment ~offset ~data] moves [data] into the remote
    segment at [offset]. Blocking process operation; returns when the remote
    kernel has acknowledged the full train. *)

val move_from :
  t -> dst:int -> segment:int -> offset:int -> len:int -> (string, error) result
(** Fetches [len] bytes from the remote segment: the remote kernel blasts
    the data back under the requester's transfer id. *)

val active_transfers : t -> int
(** Transfers currently bound in the demultiplexer (for tests). *)

(** {1 Short-message IPC}

    The V kernel's synchronous [Send]/[Receive]/[Reply] primitives, over
    which the bulk moves are arranged (the client tells the file server
    where its pre-allocated buffer is with a short message; the server then
    [MoveTo]s into it). Messages are at most 32 bytes; a [Send] blocks until
    the server's [Reply] arrives, retransmitting on loss, and servers
    deduplicate repeated [Send]s by message id. *)

type reply_token
(** Identifies a received message so the server can answer it. *)

val register_process : t -> name:string -> int
(** Registers a process on this kernel; returns its pid. *)

val process_name : t -> pid:int -> string option

val send : t -> dst:int -> from_pid:int -> to_pid:int -> string -> (string, error) result
(** [send k ~dst ~from_pid ~to_pid body] delivers [body] to process [to_pid]
    on the kernel at address [dst] and blocks until its reply. Blocking
    process operation. Raises [Invalid_argument] on bodies over 32 bytes. *)

val receive : t -> pid:int -> string * reply_token
(** Blocks until a message arrives for [pid]. *)

val reply : t -> reply_token -> string -> unit
(** Answers a received message, releasing the remote sender. Duplicate
    [Send]s arriving after the reply are answered with the stored reply. *)
