let max_body = 32
let tag_send = 0xA0
let tag_reply = 0xA1
let tag_error = 0xA2

type t =
  | Send of { from_pid : int; to_pid : int; body : string }
  | Reply of { from_pid : int; to_pid : int; body : string }
  | Error_reply of { to_pid : int; reason : int }

let check_body body =
  if String.length body > max_body then invalid_arg "Msg: body exceeds 32 bytes"

let encode t =
  let tag, from_pid, to_pid, body =
    match t with
    | Send { from_pid; to_pid; body } ->
        check_body body;
        (tag_send, from_pid, to_pid, body)
    | Reply { from_pid; to_pid; body } ->
        check_body body;
        (tag_reply, from_pid, to_pid, body)
    | Error_reply { to_pid; reason } -> (tag_error, reason, to_pid, "")
  in
  let buf = Bytes.create (9 + String.length body) in
  Bytes.set_uint8 buf 0 tag;
  Bytes.set_int32_be buf 1 (Int32.of_int from_pid);
  Bytes.set_int32_be buf 5 (Int32.of_int to_pid);
  Bytes.blit_string body 0 buf 9 (String.length body);
  Bytes.to_string buf

let is_message_payload payload =
  String.length payload >= 9
  &&
  let tag = Char.code payload.[0] in
  tag = tag_send || tag = tag_reply || tag = tag_error

let decode payload =
  if String.length payload < 9 || String.length payload > 9 + max_body then None
  else begin
    let buf = Bytes.of_string payload in
    let u32 pos = Int32.to_int (Bytes.get_int32_be buf pos) land 0xFFFFFFFF in
    let from_pid = u32 1 and to_pid = u32 5 in
    let body = String.sub payload 9 (String.length payload - 9) in
    match Char.code payload.[0] with
    | tag when tag = tag_send -> Some (Send { from_pid; to_pid; body })
    | tag when tag = tag_reply -> Some (Reply { from_pid; to_pid; body })
    | tag when tag = tag_error && body = "" -> Some (Error_reply { to_pid; reason = from_pid })
    | _ -> None
  end

let equal a b = a = b

let pp ppf = function
  | Send { from_pid; to_pid; body } ->
      Format.fprintf ppf "send %d->%d %S" from_pid to_pid body
  | Reply { from_pid; to_pid; body } ->
      Format.fprintf ppf "reply %d->%d %S" from_pid to_pid body
  | Error_reply { to_pid; reason } -> Format.fprintf ppf "error->%d (%d)" to_pid reason
