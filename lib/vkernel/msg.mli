(** Wire encoding of V-style short messages.

    V's [Send]/[Receive]/[Reply] primitives exchange small fixed-size
    messages; the paper's [MoveTo]/[MoveFrom] bulk moves are set up by
    exactly such an exchange (the client tells the file server where its
    buffer is). Messages ride in [Req] packets; the first payload byte
    distinguishes them from {!Control} payloads (whose first byte is the
    move opcode 1 or 2). *)

val max_body : int
(** 32 bytes, as in the V kernel. *)

type t =
  | Send of { from_pid : int; to_pid : int; body : string }
  | Reply of { from_pid : int; to_pid : int; body : string }
  | Error_reply of { to_pid : int; reason : int }
      (** e.g. no such process; [reason] is a small error code *)

val encode : t -> string
val decode : string -> t option
val is_message_payload : string -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
