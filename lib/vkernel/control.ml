type op = Move_to | Move_from

type t = { op : op; segment : int; offset : int; packet_bytes : int; total_bytes : int }

let encode t =
  let buf = Bytes.create 17 in
  Bytes.set_uint8 buf 0 (match t.op with Move_to -> 1 | Move_from -> 2);
  Bytes.set_int32_be buf 1 (Int32.of_int t.segment);
  Bytes.set_int32_be buf 5 (Int32.of_int t.offset);
  Bytes.set_int32_be buf 9 (Int32.of_int t.packet_bytes);
  Bytes.set_int32_be buf 13 (Int32.of_int t.total_bytes);
  Bytes.to_string buf

let decode payload =
  if String.length payload <> 17 then None
  else begin
    let buf = Bytes.of_string payload in
    let op =
      match Bytes.get_uint8 buf 0 with 1 -> Some Move_to | 2 -> Some Move_from | _ -> None
    in
    match op with
    | None -> None
    | Some op ->
        let u32 pos = Int32.to_int (Bytes.get_int32_be buf pos) land 0xFFFFFFFF in
        let t =
          {
            op;
            segment = u32 1;
            offset = u32 5;
            packet_bytes = u32 9;
            total_bytes = u32 13;
          }
        in
        if t.packet_bytes <= 0 || t.total_bytes <= 0 then None else Some t
  end

let total_packets t = (t.total_bytes + t.packet_bytes - 1) / t.packet_bytes
let equal a b = a = b

let pp ppf t =
  Format.fprintf ppf "%s segment=%d offset=%d %dB in %dB packets"
    (match t.op with Move_to -> "MoveTo" | Move_from -> "MoveFrom")
    t.segment t.offset t.total_bytes t.packet_bytes
