(** Control payloads of the inter-kernel protocol.

    A [MoveTo]/[MoveFrom] request travels as a [Req] packet whose payload
    encodes the operation, the target segment and the transfer geometry. *)

type op = Move_to | Move_from

type t = {
  op : op;
  segment : int;  (** remote segment id *)
  offset : int;  (** byte offset within the segment *)
  packet_bytes : int;
  total_bytes : int;
}

val encode : t -> string
val decode : string -> t option
val total_packets : t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
