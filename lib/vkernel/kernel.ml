open Eventsim

type rights = Read_only | Write_only | Read_write

type error =
  | Unknown_segment
  | Access_denied
  | Out_of_bounds
  | Timed_out
  | No_such_process

let pp_error ppf e =
  Format.pp_print_string ppf
    (match e with
    | Unknown_segment -> "unknown segment"
    | Access_denied -> "access denied"
    | Out_of_bounds -> "out of bounds"
    | Timed_out -> "timed out"
    | No_such_process -> "no such process")

type segment = { buffer : Bytes.t; rights : rights }

type reply_token = { reply_to : int; msg_id : int; client_pid : int; server_pid : int }

type process = {
  pid : int;
  process_name : string;
  inbox : (string * reply_token) Mailbox.t;
}

(* A live transfer in the demultiplexer: whatever currently consumes its
   messages (a handshake interceptor, then a protocol endpoint). *)
type binding = { mutable on_message : Packet.Message.t -> unit }

type t = {
  station : Packet.Message.t Netmodel.Station.t;
  sim : Sim.t;
  params : Netmodel.Params.t;
  suite : Protocol.Suite.t;
  retransmit_ns : int;
  max_attempts : int;
  kernel_name : string;
  segments : (int, segment) Hashtbl.t;
  bindings : (int, binding) Hashtbl.t;
  accepted : (int, Packet.Message.t) Hashtbl.t;  (* transfer id -> handshake reply *)
  processes : (int, process) Hashtbl.t;
  (* Short-message IPC state: completed replies kept for duplicate Sends,
     in-flight keys to drop duplicates while the server works, and waiters
     for our own outstanding Sends. *)
  served : (int * int, Packet.Message.t) Hashtbl.t;
  in_progress : (int * int, unit) Hashtbl.t;
  pending_sends : (int, [ `Reply of string | `Rejected of int | `Timeout ] Mailbox.t) Hashtbl.t;
  mutable next_segment : int;
  mutable next_transfer : int;
  mutable next_pid : int;
}

let address t = Netmodel.Station.address t.station
let name t = t.kernel_name
let active_transfers t = Hashtbl.length t.bindings

(* Handshake replies: [Ack seq=0 total=0] accepts; a [Nack total=0] (a total
   no data machine ever uses) rejects, its seq carrying the error code. *)
let reject_code = function
  | Unknown_segment -> 1
  | Access_denied -> 2
  | Out_of_bounds -> 3
  | Timed_out -> 4
  | No_such_process -> 5

let error_of_code = function
  | 1 -> Unknown_segment
  | 2 -> Access_denied
  | 3 -> Out_of_bounds
  | 5 -> No_such_process
  | _ -> Timed_out

let is_handshake_accept (m : Packet.Message.t) =
  m.Packet.Message.kind = Packet.Kind.Ack && m.Packet.Message.seq = 0
  && m.Packet.Message.total = 0

let is_handshake_reject (m : Packet.Message.t) =
  m.Packet.Message.kind = Packet.Kind.Nack && m.Packet.Message.total = 0

let control_bytes t (m : Packet.Message.t) =
  t.params.Netmodel.Params.ack_packet_bytes + String.length m.Packet.Message.payload

let send_control t ~dst m = Netmodel.Station.send t.station ~dst ~bytes:(control_bytes t m) m

let bind_endpoint t ~transfer_id ~peer ~machine ~deliver ~on_complete =
  let endpoint =
    Simnet.Endpoint.create ~sim:t.sim ~params:t.params ~station:t.station ~peer ~machine
      ~deliver ~on_complete ()
  in
  let on_message m = Simnet.Endpoint.inject endpoint (Protocol.Action.Message m) in
  (match Hashtbl.find_opt t.bindings transfer_id with
  | Some binding -> binding.on_message <- on_message
  | None -> Hashtbl.replace t.bindings transfer_id { on_message });
  endpoint

let validate t (control : Control.t) =
  match Hashtbl.find_opt t.segments control.Control.segment with
  | None -> Error Unknown_segment
  | Some segment ->
      let allowed =
        match (control.Control.op, segment.rights) with
        | Control.Move_to, (Write_only | Read_write) -> true
        | Control.Move_from, (Read_only | Read_write) -> true
        | Control.Move_to, Read_only | Control.Move_from, Write_only -> false
      in
      if not allowed then Error Access_denied
      else if
        control.Control.offset < 0
        || control.Control.offset + control.Control.total_bytes > Bytes.length segment.buffer
      then Error Out_of_bounds
      else Ok segment

let config_of_control t ~transfer_id (control : Control.t) =
  Protocol.Config.make ~transfer_id ~packet_bytes:control.Control.packet_bytes
    ~tuning:
      (Protocol.Tuning.fixed ~retransmit_ns:t.retransmit_ns
         ~max_attempts:t.max_attempts ())
    ~total_packets:(Control.total_packets control) ()

(* ---------------------------------------------- short-message IPC path *)

let req_with_payload ~transfer_id payload =
  { (Packet.Message.req ~transfer_id ~total:1) with Packet.Message.payload = payload }

let handle_ipc t (m : Packet.Message.t) ~src =
  let msg_id = m.Packet.Message.transfer_id in
  match Msg.decode m.Packet.Message.payload with
  | None -> ()
  | Some (Msg.Send { from_pid; to_pid; body }) -> begin
      let key = (src, msg_id) in
      match Hashtbl.find_opt t.served key with
      | Some stored ->
          (* Our reply was lost; the client re-sent. Repeat the reply. *)
          send_control t ~dst:src stored
      | None ->
          if not (Hashtbl.mem t.in_progress key) then begin
            match Hashtbl.find_opt t.processes to_pid with
            | None ->
                let stored =
                  req_with_payload ~transfer_id:msg_id
                    (Msg.encode
                       (Msg.Error_reply
                          { to_pid = from_pid; reason = reject_code No_such_process }))
                in
                Hashtbl.replace t.served key stored;
                send_control t ~dst:src stored
            | Some process ->
                Hashtbl.replace t.in_progress key ();
                ignore
                  (Mailbox.try_put process.inbox
                     ( body,
                       { reply_to = src; msg_id; client_pid = from_pid; server_pid = to_pid }
                     ))
          end
    end
  | Some (Msg.Reply { body; _ }) -> begin
      match Hashtbl.find_opt t.pending_sends msg_id with
      | Some waiter -> ignore (Mailbox.try_put waiter (`Reply body))
      | None -> ()
    end
  | Some (Msg.Error_reply { reason; _ }) -> begin
      match Hashtbl.find_opt t.pending_sends msg_id with
      | Some waiter -> ignore (Mailbox.try_put waiter (`Rejected reason))
      | None -> ()
    end

(* ------------------------------------------------------ bulk-move path *)

let handle_req t (m : Packet.Message.t) ~src =
  if Msg.is_message_payload m.Packet.Message.payload then handle_ipc t m ~src
  else
  match Hashtbl.find_opt t.accepted m.Packet.Message.transfer_id with
  | Some reply ->
      (* Duplicate REQ: our previous handshake reply was lost; repeat it. *)
      send_control t ~dst:src reply
  | None -> begin
      match Control.decode m.Packet.Message.payload with
      | None -> ()
      | Some control -> begin
          let transfer_id = m.Packet.Message.transfer_id in
          let reply_and_remember reply =
            Hashtbl.replace t.accepted transfer_id reply;
            send_control t ~dst:src reply
          in
          match validate t control with
          | Error error ->
              reply_and_remember
                (Packet.Message.nack ~transfer_id ~first_missing:(reject_code error)
                   ~total:0 ())
          | Ok segment -> begin
              let config = config_of_control t ~transfer_id control in
              let ack = Packet.Message.ack ~transfer_id ~seq:0 ~total:0 in
              let position seq = control.Control.offset + (seq * control.Control.packet_bytes) in
              match control.Control.op with
              | Control.Move_to ->
                  let deliver seq payload =
                    Bytes.blit_string payload 0 segment.buffer (position seq)
                      (String.length payload)
                  in
                  let machine = Protocol.Suite.receiver t.suite config in
                  reply_and_remember ack;
                  ignore
                    (bind_endpoint t ~transfer_id ~peer:src ~machine ~deliver
                       ~on_complete:(fun _ -> ()))
              | Control.Move_from ->
                  let payload seq =
                    let start = position seq in
                    let len =
                      min control.Control.packet_bytes
                        (control.Control.offset + control.Control.total_bytes - start)
                    in
                    Bytes.sub_string segment.buffer start len
                  in
                  let machine = Protocol.Suite.sender t.suite config ~payload in
                  (* The accept goes on the wire before the endpoint's first
                     data copy, so the requester sees it first. *)
                  reply_and_remember ack;
                  ignore
                    (bind_endpoint t ~transfer_id ~peer:src ~machine
                       ~deliver:(fun _ _ -> ())
                       ~on_complete:(fun _ -> ()))
            end
        end
    end

let create ?(suite = Protocol.Suite.Blast Protocol.Blast.Go_back_n)
    ?(retransmit_ns = 200_000_000) ?(max_attempts = 50) wire ~name =
  let station = Netmodel.Station.create wire ~name in
  let t =
    {
      station;
      sim = Netmodel.Wire.sim wire;
      params = Netmodel.Wire.params wire;
      suite;
      retransmit_ns;
      max_attempts;
      kernel_name = name;
      segments = Hashtbl.create 8;
      bindings = Hashtbl.create 8;
      accepted = Hashtbl.create 8;
      processes = Hashtbl.create 8;
      served = Hashtbl.create 16;
      in_progress = Hashtbl.create 16;
      pending_sends = Hashtbl.create 8;
      next_segment = 1;
      next_transfer = 1;
      next_pid = 1;
    }
  in
  Proc.spawn (Proc.env t.sim) ~name:(name ^ "-dispatch") (fun () ->
      while true do
        let frame = Netmodel.Station.recv t.station in
        let m = frame.Netmodel.Wire.payload in
        match m.Packet.Message.kind with
        | Packet.Kind.Req -> handle_req t m ~src:frame.Netmodel.Wire.src
        | Packet.Kind.Data | Packet.Kind.Ack | Packet.Kind.Nack | Packet.Kind.Rej
        | Packet.Kind.Mreq | Packet.Kind.Mrep -> begin
            match Hashtbl.find_opt t.bindings m.Packet.Message.transfer_id with
            | Some binding -> binding.on_message m
            | None -> () (* stale packet of an unknown transfer *)
          end
      done);
  t

let register_segment t ~rights buffer =
  let id = t.next_segment in
  t.next_segment <- id + 1;
  Hashtbl.replace t.segments id { buffer; rights };
  id

let segment_contents t id = Option.map (fun s -> s.buffer) (Hashtbl.find_opt t.segments id)

let fresh_transfer_id t =
  let id = (address t lsl 20) lor (t.next_transfer land 0xFFFFF) in
  t.next_transfer <- t.next_transfer + 1;
  id

(* Shared RPC skeleton: reliable REQ handshake, then run the protocol
   endpoint to completion. Must be called from a simulation process. *)
let rpc t ~dst ~control ~make_machine ~deliver =
  let transfer_id = fresh_transfer_id t in
  let handshake : [ `Accepted | `Rejected of error | `Timeout ] Mailbox.t =
    Mailbox.create ~capacity:max_int
  in
  (* Early data of a MoveFrom can overtake our handshake processing; hold it
     for the endpoint. *)
  let early = Queue.create () in
  let intercept m =
    if is_handshake_accept m then ignore (Mailbox.try_put handshake `Accepted)
    else if is_handshake_reject m then
      ignore (Mailbox.try_put handshake (`Rejected (error_of_code m.Packet.Message.seq)))
    else Queue.push m early
  in
  Hashtbl.replace t.bindings transfer_id { on_message = intercept };
  let timer =
    Timer.create t.sim ~on_fire:(fun () -> ignore (Mailbox.try_put handshake `Timeout))
  in
  let req =
    {
      (Packet.Message.req ~transfer_id ~total:(Control.total_packets control)) with
      Packet.Message.payload = Control.encode control;
    }
  in
  let rec attempt n =
    if n > t.max_attempts then Error Timed_out
    else begin
      send_control t ~dst req;
      Timer.arm timer (Time.span_ns t.retransmit_ns);
      match Mailbox.get handshake with
      | `Accepted ->
          Timer.stop timer;
          Ok ()
      | `Rejected error ->
          Timer.stop timer;
          Error error
      | `Timeout -> attempt (n + 1)
    end
  in
  match attempt 1 with
  | Error error ->
      Hashtbl.remove t.bindings transfer_id;
      Error error
  | Ok () -> begin
      let completion = Waitq.create () in
      let outcome = ref None in
      let machine = make_machine ~transfer_id in
      let endpoint =
        bind_endpoint t ~transfer_id ~peer:dst ~machine ~deliver ~on_complete:(fun o ->
            if !outcome = None then begin
              outcome := Some o;
              Waitq.broadcast completion
            end)
      in
      Queue.iter
        (fun m -> Simnet.Endpoint.inject endpoint (Protocol.Action.Message m))
        early;
      Queue.clear early;
      while !outcome = None do
        Waitq.wait completion
      done;
      match Option.get !outcome with
      | Protocol.Action.Success -> Ok ()
      | Protocol.Action.Too_many_attempts | Protocol.Action.Peer_unreachable
      | Protocol.Action.Rejected ->
          Error Timed_out
    end

let move_to t ~dst ~segment ~offset ~data =
  if String.length data = 0 then invalid_arg "Kernel.move_to: empty data";
  let control =
    {
      Control.op = Control.Move_to;
      segment;
      offset;
      packet_bytes = t.params.Netmodel.Params.data_packet_bytes;
      total_bytes = String.length data;
    }
  in
  let make_machine ~transfer_id =
    let config = config_of_control t ~transfer_id control in
    let payload seq =
      let start = seq * control.Control.packet_bytes in
      String.sub data start (min control.Control.packet_bytes (String.length data - start))
    in
    Protocol.Suite.sender t.suite config ~payload
  in
  rpc t ~dst ~control ~make_machine ~deliver:(fun _ _ -> ())

let move_from t ~dst ~segment ~offset ~len =
  if len <= 0 then invalid_arg "Kernel.move_from: len must be positive";
  let control =
    {
      Control.op = Control.Move_from;
      segment;
      offset;
      packet_bytes = t.params.Netmodel.Params.data_packet_bytes;
      total_bytes = len;
    }
  in
  let received = Bytes.create len in
  let make_machine ~transfer_id =
    Protocol.Suite.receiver t.suite (config_of_control t ~transfer_id control)
  in
  let deliver seq payload =
    Bytes.blit_string payload 0 received
      (seq * control.Control.packet_bytes)
      (String.length payload)
  in
  match rpc t ~dst ~control ~make_machine ~deliver with
  | Ok () -> Ok (Bytes.to_string received)
  | Error e -> Error e


(* ------------------------------------------------- process-level IPC API *)

let register_process t ~name =
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  Hashtbl.replace t.processes pid
    { pid; process_name = name; inbox = Mailbox.create ~capacity:max_int };
  pid

let process_name t ~pid =
  Option.map (fun p -> p.process_name) (Hashtbl.find_opt t.processes pid)

let send t ~dst ~from_pid ~to_pid body =
  if String.length body > Msg.max_body then invalid_arg "Kernel.send: body exceeds 32 bytes";
  let msg_id = fresh_transfer_id t in
  let waiter = Mailbox.create ~capacity:max_int in
  Hashtbl.replace t.pending_sends msg_id waiter;
  let timer =
    Timer.create t.sim ~on_fire:(fun () -> ignore (Mailbox.try_put waiter `Timeout))
  in
  let packet =
    req_with_payload ~transfer_id:msg_id (Msg.encode (Msg.Send { from_pid; to_pid; body }))
  in
  let rec attempt n =
    if n > t.max_attempts then Error Timed_out
    else begin
      send_control t ~dst packet;
      Timer.arm timer (Time.span_ns t.retransmit_ns);
      match Mailbox.get waiter with
      | `Reply body ->
          Timer.stop timer;
          Ok body
      | `Rejected reason ->
          Timer.stop timer;
          Error (error_of_code reason)
      | `Timeout -> attempt (n + 1)
    end
  in
  let result = attempt 1 in
  Hashtbl.remove t.pending_sends msg_id;
  result

let receive t ~pid =
  match Hashtbl.find_opt t.processes pid with
  | None -> invalid_arg "Kernel.receive: unregistered process"
  | Some process -> Mailbox.get process.inbox

let reply t token body =
  if String.length body > Msg.max_body then invalid_arg "Kernel.reply: body exceeds 32 bytes";
  let stored =
    req_with_payload ~transfer_id:token.msg_id
      (Msg.encode
         (Msg.Reply { from_pid = token.server_pid; to_pid = token.client_pid; body }))
  in
  Hashtbl.replace t.served (token.reply_to, token.msg_id) stored;
  Hashtbl.remove t.in_progress (token.reply_to, token.msg_id);
  send_control t ~dst:token.reply_to stored
