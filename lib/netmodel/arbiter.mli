(** Medium-access arbitration for the shared wire.

    The paper's measurements ran on an essentially idle Ethernet, so the
    default {!fifo} arbiter — transmissions queue and never collide — is both
    faithful and fast. The {!csma_cd} arbiter implements carrier sense with a
    propagation-delay vulnerability window, collision detection, jam, and
    truncated binary exponential backoff, so the load experiments can probe
    where "low load" ends.

    All acquire operations are blocking process operations. *)

type t

val fifo : unit -> t

val csma_cd :
  rng:Stats.Rng.t ->
  propagation:Eventsim.Time.span ->
  ?slot:Eventsim.Time.span ->
  ?jam:Eventsim.Time.span ->
  ?max_backoff_exponent:int ->
  ?attempt_limit:int ->
  unit ->
  t
(** Defaults follow 10 Mb/s Ethernet: 51.2 us slot, 4.8 us jam, backoff
    exponent capped at 10, 16 attempts before the frame is dropped.
    Two stations that begin transmitting within [propagation] of each other
    collide: both jam, back off a random number of slots, and retry. *)

val acquire : t -> Eventsim.Time.span -> bool
(** [acquire t span] contends for the medium and, on success, occupies it for
    [span] (the frame's serialization time), returning [true] once the
    transmission has completed. [false] means the frame was dropped after
    exhausting the attempt limit (16 consecutive collisions). *)

type stats = {
  mutable collisions : int;
  mutable deferrals : int;  (** carrier-sense busy waits *)
  mutable excessive_collision_drops : int;
}

val stats : t -> stats

val busy_span : t -> now:Eventsim.Time.t -> Eventsim.Time.span
(** Cumulative time spent on successful transmissions (collision fragments
    and jams are excluded — they are waste, not utilization). *)
