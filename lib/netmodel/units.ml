let kib n = n * 1024
let mib n = n * 1024 * 1024

let transmit_span ~bandwidth_bps ~bytes =
  if bandwidth_bps <= 0 then invalid_arg "Units.transmit_span: bandwidth must be positive";
  if bytes < 0 then invalid_arg "Units.transmit_span: negative size";
  let bits = bytes * 8 in
  (* ns = bits * 1e9 / bps, rounded half-up; fits 63-bit for transfers up to
     ~1 GiB, far beyond anything simulated here. *)
  let ns = ((bits * 1_000_000_000) + (bandwidth_bps / 2)) / bandwidth_bps in
  Eventsim.Time.span_ns ns

let pp_bytes ppf bytes =
  if bytes >= 1024 * 1024 && bytes mod (1024 * 1024) = 0 then
    Format.fprintf ppf "%d MiB" (bytes / (1024 * 1024))
  else if bytes >= 1024 && bytes mod 1024 = 0 then Format.fprintf ppf "%d KiB" (bytes / 1024)
  else Format.fprintf ppf "%d B" bytes
