(** Size and rate conversions. *)

val kib : int -> int
(** [kib n] is [n * 1024] bytes. *)

val mib : int -> int

val transmit_span : bandwidth_bps:int -> bytes:int -> Eventsim.Time.span
(** Serialization delay of [bytes] at [bandwidth_bps], rounded to the nearest
    nanosecond. At 10 Mb/s a 1024-byte packet gives exactly 819 200 ns (the
    paper rounds to 820 us), a 64-byte ack 51 200 ns. *)

val pp_bytes : Format.formatter -> int -> unit
(** Human-readable size: ["64 B"], ["16 KiB"], ["2 MiB"]. *)
