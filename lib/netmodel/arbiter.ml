open Eventsim

type stats = {
  mutable collisions : int;
  mutable deferrals : int;
  mutable excessive_collision_drops : int;
}

(* The window in which concurrently started transmissions collide. *)
type window = { mutable members : int; mutable collided : bool }

type csma = {
  rng : Stats.Rng.t;
  propagation : Time.span;
  slot : Time.span;
  jam : Time.span;
  max_backoff_exponent : int;
  attempt_limit : int;
  mutable visible_busy_until : Time.t;
  mutable window : window option;
  stats : stats;
  mutable useful : Time.span;
}

type t = Fifo of { resource : Resource.t; stats : stats } | Csma of csma

let fresh_stats () = { collisions = 0; deferrals = 0; excessive_collision_drops = 0 }
let fifo () = Fifo { resource = Resource.create ~capacity:1; stats = fresh_stats () }

let csma_cd ~rng ~propagation ?(slot = Time.span_us 51.2) ?(jam = Time.span_us 4.8)
    ?(max_backoff_exponent = 10) ?(attempt_limit = 16) () =
  if attempt_limit <= 0 then invalid_arg "Arbiter.csma_cd: attempt_limit must be positive";
  Csma
    {
      rng;
      propagation;
      slot;
      jam;
      max_backoff_exponent;
      attempt_limit;
      visible_busy_until = Time.zero;
      window = None;
      stats = fresh_stats ();
      useful = Time.span_zero;
    }

let stats = function Fifo f -> f.stats | Csma c -> c.stats

let note_busy_end c at =
  if Time.( < ) c.visible_busy_until at then c.visible_busy_until <- at

let leave_window c w =
  w.members <- w.members - 1;
  if w.members = 0 then c.window <- None

let acquire_csma c span =
  let sim = Proc.current_sim () in
  let now () = Sim.now sim in
  let rec attempt k =
    if k > c.attempt_limit then begin
      c.stats.excessive_collision_drops <- c.stats.excessive_collision_drops + 1;
      false
    end
    else if Time.( < ) (now ()) c.visible_busy_until then begin
      (* Carrier sensed busy: defer until the channel looks idle (1-persistent). *)
      c.stats.deferrals <- c.stats.deferrals + 1;
      Proc.sleep (Time.diff c.visible_busy_until (now ()));
      attempt k
    end
    else begin
      match c.window with
      | Some w ->
          (* Someone started within the last propagation delay: their signal
             has not reached us, we transmit too — collision. *)
          w.collided <- true;
          w.members <- w.members + 1;
          collide k w
      | None ->
          let w = { members = 1; collided = false } in
          c.window <- Some w;
          Proc.sleep c.propagation;
          if w.collided then collide k w
          else begin
            (* We own the channel: it is now visibly busy until the frame
               ends. *)
            let remaining = Time.span_sub span (Time.span_min span c.propagation) in
            note_busy_end c (Time.add (now ()) remaining);
            c.window <- None;
            Proc.sleep remaining;
            c.useful <- Time.span_add c.useful span;
            true
          end
    end
  and collide k w =
    c.stats.collisions <- c.stats.collisions + 1;
    (* Detect at one propagation delay, then jam. *)
    Proc.sleep c.propagation;
    note_busy_end c (Time.add (now ()) c.jam);
    Proc.sleep c.jam;
    leave_window c w;
    let exponent = min k c.max_backoff_exponent in
    let slots = Stats.Rng.int c.rng (1 lsl exponent) in
    if slots > 0 then Proc.sleep (Time.span_scale slots c.slot);
    attempt (k + 1)
  in
  attempt 1

let acquire t span =
  match t with
  | Fifo f ->
      Resource.with_resource f.resource (fun () -> Proc.sleep span);
      true
  | Csma c -> acquire_csma c span

let busy_span t ~now =
  match t with
  | Fifo f -> Resource.busy_span f.resource ~now
  | Csma c -> c.useful
