(** The shared Ethernet medium.

    A single-segment broadcast bus: one transmission at a time (the
    experiments run on an otherwise idle network, so contention is rare but
    still modelled by FIFO queueing on the medium), a fixed propagation
    delay, and loss sampled per transmission from a network error model plus
    an interface error model (the paper attributes most observed loss to the
    3-Com interfaces rather than the wire). *)

type 'a frame = { src : int; dst : int; bytes : int; payload : 'a }

type counters = {
  mutable sent : int;
  mutable delivered : int;
  mutable lost_network : int;
  mutable lost_interface : int;
  mutable lost_overrun : int;  (** arrivals dropped because every receive buffer was full *)
  mutable lost_collision : int;
      (** frames abandoned after excessive collisions (CSMA/CD arbiter only) *)
}

type 'a t

val create :
  Eventsim.Sim.t ->
  params:Params.t ->
  ?network_error:Error_model.t ->
  ?interface_error:Error_model.t ->
  ?trace:Eventsim.Trace.t ->
  ?arbiter:Arbiter.t ->
  unit ->
  'a t
(** [arbiter] defaults to FIFO queueing (the idle-network regime the paper
    measures); pass {!Arbiter.csma_cd} to model contention. *)

val sim : 'a t -> Eventsim.Sim.t
val params : 'a t -> Params.t
val trace : 'a t -> Eventsim.Trace.t option

val register : 'a t -> rx_buffers:int -> int * 'a frame Eventsim.Mailbox.t
(** Attaches a station; returns its address and receive mailbox. *)

val transmit : 'a t -> 'a frame -> unit
(** Blocking process operation: waits for the medium, holds it for the
    frame's serialization delay, then schedules delivery one propagation
    delay later. Returns when the transmission (not the delivery) ends.
    Raises [Invalid_argument] for an unknown destination. *)

val counters : 'a t -> counters

val utilization : 'a t -> float
(** Fraction of elapsed simulated time the medium was carrying successful
    transmissions. *)

val medium_stats : 'a t -> Arbiter.stats
(** Collision/deferral counters of the medium arbiter. *)
