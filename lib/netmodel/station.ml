open Eventsim

type 'a t = {
  wire : 'a Wire.t;
  name : string;
  address : int;
  rx : 'a Wire.frame Mailbox.t;
  cpu : Resource.t;
  tx_slots : Resource.t;
  dma_engine : Resource.t option;
}

let create wire ~name =
  let params = Wire.params wire in
  let address, rx = Wire.register wire ~rx_buffers:params.Params.rx_buffers in
  {
    wire;
    name;
    address;
    rx;
    cpu = Resource.create ~capacity:1;
    tx_slots = Resource.create ~capacity:params.Params.tx_buffers;
    dma_engine =
      (match params.Params.dma with
      | Some _ -> Some (Resource.create ~capacity:1)
      | None -> None);
  }

let address t = t.address
let name t = t.name

let engine_busy t resource ~lane ~kind span =
  Resource.with_resource resource (fun () ->
      let sim = Wire.sim t.wire in
      let start = Sim.now sim in
      Proc.sleep span;
      match Wire.trace t.wire with
      | Some trace -> Trace.record trace ~lane ~kind ~start ~stop:(Sim.now sim)
      | None -> ())

let cpu_busy t ~kind span = engine_busy t t.cpu ~lane:(t.name ^ " cpu") ~kind span

let dma_busy t ~kind span =
  match t.dma_engine with
  | Some engine -> engine_busy t engine ~lane:(t.name ^ " nic") ~kind span
  | None -> invalid_arg "Station: no DMA engine"

let cpu_busy_span t ~now = Resource.busy_span t.cpu ~now

let frame_suffix params ~bytes = if Params.is_data_size params ~bytes then "data" else "ack"

let send t ~dst ~bytes payload =
  let params = Wire.params t.wire in
  let suffix = frame_suffix params ~bytes in
  Resource.acquire t.tx_slots;
  (match params.Params.dma with
  | None -> cpu_busy t ~kind:("copy-" ^ suffix ^ "-in") (Params.copy_cost params ~bytes)
  | Some dma ->
      (* The host only issues the command; the interface's own processor
         copies the frame into its buffer. *)
      cpu_busy t ~kind:"command" dma.Params.command;
      dma_busy t ~kind:("copy-" ^ suffix ^ "-in") (Params.dma_copy_cost params ~bytes));
  if Time.span_to_ns params.Params.device_overhead > 0 then
    Proc.sleep params.Params.device_overhead;
  let frame = { Wire.src = t.address; dst; bytes; payload } in
  if params.Params.busy_wait_tx then
    (* The CPU polls the interface until the frame is on the wire; nothing
       else (in particular no ack copy-out) can run on this station. *)
    Resource.with_resource t.cpu (fun () ->
        Wire.transmit t.wire frame;
        Resource.release t.tx_slots)
  else
    Proc.spawn
      (Proc.env (Wire.sim t.wire))
      ~name:(t.name ^ "-tx")
      (fun () ->
        Wire.transmit t.wire frame;
        Resource.release t.tx_slots)

let copy_out t frame =
  let params = Wire.params t.wire in
  let suffix = frame_suffix params ~bytes:frame.Wire.bytes in
  (match params.Params.dma with
  | None ->
      cpu_busy t ~kind:("copy-" ^ suffix ^ "-out") (Params.copy_cost params ~bytes:frame.Wire.bytes)
  | Some dma ->
      dma_busy t ~kind:("copy-" ^ suffix ^ "-out")
        (Params.dma_copy_cost params ~bytes:frame.Wire.bytes);
      cpu_busy t ~kind:"command" dma.Params.command);
  if Time.span_to_ns params.Params.rx_service_overhead > 0 then
    (* Protocol software runs before the buffer can be reused; this is what
       makes a too-slow receiver drop back-to-back arrivals. *)
    cpu_busy t ~kind:"rx-service" params.Params.rx_service_overhead;
  Mailbox.remove t.rx;
  frame

let recv t = copy_out t (Mailbox.peek t.rx)

let try_recv t =
  if Mailbox.is_empty t.rx then None
  else Some (copy_out t (Mailbox.peek t.rx))

let rx_pending t = Mailbox.length t.rx

let flush_rx t =
  let n = Mailbox.length t.rx in
  for _ = 1 to n do
    Mailbox.remove t.rx
  done;
  n
