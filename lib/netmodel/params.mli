(** Hardware and implementation constants of the simulated testbed.

    Two presets reproduce the paper's environments:
    {ul
    {- {!standalone}: the Section 2.1 measurement programs — data-link level,
       busy-waiting, no headers. Constants from Table 2: [C] = 1.35 ms,
       [Ca] = 0.17 ms, [T] = 0.82 ms, [Ta] = 0.05 ms, propagation ~10 us.}
    {- {!vkernel}: the Section 2.2 V-kernel [MoveTo] path — header handling,
       access-right checking, demultiplexing and interrupt handling folded
       into the copy costs, as the paper does: [C] = 1.83 ms,
       [Ca] = 0.67 ms.}} *)

type t = {
  data_packet_bytes : int;  (** payload packet size on the wire (1024) *)
  ack_packet_bytes : int;  (** acknowledgement packet size (64) *)
  bandwidth_bps : int;  (** 10 Mb/s Ethernet *)
  propagation : Eventsim.Time.span;  (** one-way latency tau (~10 us) *)
  copy_data : Eventsim.Time.span;  (** C: processor copy of a data packet into/out of the interface *)
  copy_ack : Eventsim.Time.span;  (** Ca: same for an ack packet *)
  tx_buffers : int;  (** interface transmit buffers: 1 = 3-Com-like, 2 = double buffered *)
  rx_buffers : int;  (** interface receive buffers *)
  busy_wait_tx : bool;
      (** when true the CPU polls until transmission completes, as the
          standalone measurement programs do; when false the copy of the next
          packet may overlap transmission (needs [tx_buffers >= 2] to help) *)
  device_overhead : Eventsim.Time.span;
      (** fixed per-frame interface command latency; zero in both presets so
          the closed-form formulas match the simulator exactly. Table 2's
          "observed" row models it separately. *)
  rx_service_overhead : Eventsim.Time.span;
      (** extra per-frame receive-side processing (demultiplexing, protocol
          software) that keeps the receive buffer occupied beyond the copy
          itself; raising it past [T] reproduces the 3-Com's full-speed
          overruns mechanistically (the paper's 1e-4 "interface errors") *)
  dma : dma option;
      (** when set, packet copies are performed by the interface's own
          processor rather than the host CPU (Section 2.1.3's DMA
          discussion): the host only pays the short command cost per frame,
          and the elapsed-time formulas hold with [C] reinterpreted as the
          DMA engine's copy time. *)
}

and dma = {
  copy_scale : float;
      (** DMA copy time as a multiple of the host CPU's ([> 1] for the
          paper's Excelan 8088 experience) *)
  command : Eventsim.Time.span;  (** host cost to issue/handle one frame *)
}

val standalone : t
val vkernel : t

val double_buffered : t -> t
(** Same constants with two transmit and two receive buffers and no transmit
    busy-wait — Figure 3.d's hypothetical interface. *)

val with_dma : ?copy_scale:float -> ?command_us:float -> t -> t
(** An interface whose on-board processor performs the copies. Defaults:
    [copy_scale = 2.0] (the Excelan's 8088 copied "much slower" than the
    68000 host), [command_us = 100]. Implies no host busy-wait. *)

val dma_copy_cost : t -> bytes:int -> Eventsim.Time.span
(** The interface processor's copy time for a frame ([copy_cost] scaled);
    meaningful only when [dma] is set. *)

val data_transmit : t -> Eventsim.Time.span
(** T, from size and bandwidth. *)

val ack_transmit : t -> Eventsim.Time.span
(** Ta. *)

val copy_cost : t -> bytes:int -> Eventsim.Time.span
(** Copy cost for an arbitrary frame size: exactly [copy_data] at the data
    packet size, exactly [copy_ack] at the ack size, linear in between and
    beyond (the per-byte slope the two calibration points define). *)

val is_data_size : t -> bytes:int -> bool
(** Classifies a frame for tracing: [true] when nearer the data size. *)

val packets_for : t -> bytes:int -> int
(** Number of data packets needed for a transfer of [bytes]. *)
