type state = Good | Bad

type kind =
  | Perfect
  | Iid of { rng : Stats.Rng.t; loss : float }
  | Gilbert of {
      rng : Stats.Rng.t;
      to_bad : float;
      to_good : float;
      loss_good : float;
      loss_bad : float;
      mutable state : state;
    }

type t = kind

let perfect () = Perfect

let check_prob name p =
  if not (p >= 0.0 && p <= 1.0) then invalid_arg ("Error_model: " ^ name ^ " outside [0,1]")

let iid rng ~loss =
  check_prob "loss" loss;
  Iid { rng; loss }

let gilbert_elliott rng ~to_bad ~to_good ~loss_good ~loss_bad =
  check_prob "to_bad" to_bad;
  check_prob "to_good" to_good;
  check_prob "loss_good" loss_good;
  check_prob "loss_bad" loss_bad;
  Gilbert { rng; to_bad; to_good; loss_good; loss_bad; state = Good }

let matched_gilbert_elliott rng ~mean_loss ~burst_length =
  if not (mean_loss >= 0.0 && mean_loss < 1.0) then
    invalid_arg "Error_model.matched_gilbert_elliott: mean_loss outside [0,1)";
  if not (burst_length >= 1.0) then
    invalid_arg "Error_model.matched_gilbert_elliott: burst_length < 1";
  (* Stationary P(Bad) = to_bad / (to_bad + to_good); mean Bad sojourn =
     1/to_good. With loss_bad = 1 and loss_good = 0, mean loss = P(Bad). *)
  let to_good = 1.0 /. burst_length in
  let to_bad = mean_loss *. to_good /. (1.0 -. mean_loss) in
  gilbert_elliott rng ~to_bad ~to_good ~loss_good:0.0 ~loss_bad:1.0

let drops = function
  | Perfect -> false
  | Iid { rng; loss } -> loss > 0.0 && Stats.Rng.bernoulli rng ~p:loss
  | Gilbert g ->
      let flip =
        match g.state with
        | Good -> Stats.Rng.bernoulli g.rng ~p:g.to_bad
        | Bad -> Stats.Rng.bernoulli g.rng ~p:g.to_good
      in
      if flip then g.state <- (match g.state with Good -> Bad | Bad -> Good);
      let loss = match g.state with Good -> g.loss_good | Bad -> g.loss_bad in
      loss > 0.0 && Stats.Rng.bernoulli g.rng ~p:loss

let average_loss = function
  | Perfect -> 0.0
  | Iid { loss; _ } -> loss
  | Gilbert { to_bad; to_good; loss_good; loss_bad; _ } ->
      if to_bad = 0.0 && to_good = 0.0 then loss_good
      else
        let p_bad = to_bad /. (to_bad +. to_good) in
        (loss_bad *. p_bad) +. (loss_good *. (1.0 -. p_bad))
