open Eventsim

type 'a frame = { src : int; dst : int; bytes : int; payload : 'a }

type counters = {
  mutable sent : int;
  mutable delivered : int;
  mutable lost_network : int;
  mutable lost_interface : int;
  mutable lost_overrun : int;
  mutable lost_collision : int;
}

type 'a t = {
  sim : Sim.t;
  params : Params.t;
  network_error : Error_model.t;
  interface_error : Error_model.t;
  trace : Trace.t option;
  medium : Arbiter.t;
  ports : (int, 'a frame Mailbox.t) Hashtbl.t;
  mutable next_address : int;
  counters : counters;
}

let create sim ~params ?(network_error = Error_model.perfect ())
    ?(interface_error = Error_model.perfect ()) ?trace ?(arbiter = Arbiter.fifo ()) () =
  {
    sim;
    params;
    network_error;
    interface_error;
    trace;
    medium = arbiter;
    ports = Hashtbl.create 8;
    next_address = 0;
    counters =
      {
        sent = 0;
        delivered = 0;
        lost_network = 0;
        lost_interface = 0;
        lost_overrun = 0;
        lost_collision = 0;
      };
  }

let sim t = t.sim
let params t = t.params
let trace t = t.trace

let register t ~rx_buffers =
  let address = t.next_address in
  t.next_address <- address + 1;
  let mailbox = Mailbox.create ~capacity:rx_buffers in
  Hashtbl.add t.ports address mailbox;
  (address, mailbox)

let deliver t frame =
  let c = t.counters in
  if Error_model.drops t.network_error then c.lost_network <- c.lost_network + 1
  else if Error_model.drops t.interface_error then c.lost_interface <- c.lost_interface + 1
  else begin
    match Hashtbl.find_opt t.ports frame.dst with
    | None -> invalid_arg "Wire.transmit: unknown destination"
    | Some mailbox ->
        if Mailbox.try_put mailbox frame then c.delivered <- c.delivered + 1
        else c.lost_overrun <- c.lost_overrun + 1
  end

let transmit t frame =
  if not (Hashtbl.mem t.ports frame.dst) then invalid_arg "Wire.transmit: unknown destination";
  let span = Units.transmit_span ~bandwidth_bps:t.params.bandwidth_bps ~bytes:frame.bytes in
  let start = Sim.now t.sim in
  if Arbiter.acquire t.medium span then begin
    t.counters.sent <- t.counters.sent + 1;
    (match t.trace with
    | Some trace ->
        let suffix = if Params.is_data_size t.params ~bytes:frame.bytes then "data" else "ack" in
        (* The span may have started later than [start] if the medium was
           contended; record the serialization window that actually carried
           the frame. *)
        let stop = Sim.now t.sim in
        let tx_start = Time.add start (Time.diff stop (Time.add start span)) in
        Trace.record trace ~lane:"wire" ~kind:("transmit-" ^ suffix) ~start:tx_start ~stop
    | None -> ());
    ignore (Sim.schedule_after t.sim t.params.propagation (fun () -> deliver t frame))
  end
  else t.counters.lost_collision <- t.counters.lost_collision + 1

let counters t = t.counters

let utilization t =
  let now = Sim.now t.sim in
  let elapsed = Time.to_ns now in
  if elapsed = 0 then 0.0
  else
    float_of_int (Time.span_to_ns (Arbiter.busy_span t.medium ~now)) /. float_of_int elapsed

let medium_stats t = Arbiter.stats t.medium
