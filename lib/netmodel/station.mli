(** A workstation attached to the wire: one CPU, a network interface with a
    fixed number of transmit and receive buffers.

    All operations are blocking process operations. The send path models the
    paper's cost structure precisely:

    + reserve a transmit buffer (waits if the interface is still sending),
    + the CPU copies the frame into the interface ([C] or [Ca]),
    + the interface transmits; with [busy_wait_tx] the CPU polls until
      the transmission completes (the standalone experiment's discipline),
      otherwise the CPU is free and the next copy may overlap (double
      buffering).

    The receive path: an arriving frame occupies a receive buffer until the
    CPU has copied it out ([C]/[Ca]); only then is the buffer free again.
    Frames arriving with no free buffer are interface-overrun losses. *)

type 'a t

val create : 'a Wire.t -> name:string -> 'a t
val address : 'a t -> int
val name : 'a t -> string

val send : 'a t -> dst:int -> bytes:int -> 'a -> unit
(** Blocking; returns when the CPU is free again (after the transmission in
    busy-wait mode, after the copy otherwise). *)

val recv : 'a t -> 'a Wire.frame
(** Blocks until a frame has arrived and been copied out of the interface.
    Intended for a single consuming process per station. *)

val try_recv : 'a t -> 'a Wire.frame option
(** [None] when no frame is waiting; otherwise performs the copy-out
    (blocking for its duration) and returns the frame. *)

val rx_pending : 'a t -> int
(** Frames currently occupying receive buffers. *)

val flush_rx : 'a t -> int
(** Discards buffered frames without copy cost (models a receiver resetting
    between experiments). Returns the number discarded. *)

val cpu_busy : 'a t -> kind:string -> Eventsim.Time.span -> unit
(** Occupies the CPU for [span], recording a trace span — used to model
    extra per-packet software overhead in ablations. *)

val cpu_busy_span : 'a t -> now:Eventsim.Time.t -> Eventsim.Time.span
(** Cumulative host-CPU busy time — with a DMA interface
    ({!Params.with_dma}) the copies move off the host and this drops
    sharply, the effect Section 2.1.3 of the paper discusses. *)
