(** Packet-loss models.

    The paper assumes statistically independent losses with constant
    probability ({!iid}), and notes that burst errors occasionally occur; the
    {!gilbert_elliott} two-state model lets the ablation benchmarks probe how
    sensitive the strategy ranking is to that assumption. *)

type t

val perfect : unit -> t
(** Never drops. *)

val iid : Stats.Rng.t -> loss:float -> t
(** Independent drops with probability [loss] per transmission. *)

val gilbert_elliott :
  Stats.Rng.t ->
  to_bad:float ->
  to_good:float ->
  loss_good:float ->
  loss_bad:float ->
  t
(** Two-state Markov burst model. Before each transmission the chain steps:
    from Good it moves to Bad with probability [to_bad], from Bad to Good
    with probability [to_good]; the transmission is then dropped with the
    loss probability of the current state. *)

val matched_gilbert_elliott : Stats.Rng.t -> mean_loss:float -> burst_length:float -> t
(** A Gilbert-Elliott model whose stationary loss rate equals [mean_loss]
    and whose bursts last [burst_length] transmissions on average, with a
    perfectly clean Good state and fully lossy Bad state. Useful for
    comparisons at equal average loss. Requires [0 <= mean_loss < 1] and
    [burst_length >= 1]. *)

val drops : t -> bool
(** Samples the model for one transmission; [true] means the frame is lost. *)

val average_loss : t -> float
(** The long-run loss rate of the model (exact for iid, stationary for
    Gilbert-Elliott). *)
