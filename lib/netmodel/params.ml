open Eventsim

type t = {
  data_packet_bytes : int;
  ack_packet_bytes : int;
  bandwidth_bps : int;
  propagation : Time.span;
  copy_data : Time.span;
  copy_ack : Time.span;
  tx_buffers : int;
  rx_buffers : int;
  busy_wait_tx : bool;
  device_overhead : Time.span;
  rx_service_overhead : Time.span;
  dma : dma option;
}

and dma = { copy_scale : float; command : Time.span }

let base =
  {
    data_packet_bytes = 1024;
    ack_packet_bytes = 64;
    bandwidth_bps = 10_000_000;
    propagation = Time.span_us 10.0;
    copy_data = Time.span_ms 1.35;
    copy_ack = Time.span_ms 0.17;
    tx_buffers = 1;
    rx_buffers = 2;
    busy_wait_tx = true;
    device_overhead = Time.span_zero;
    rx_service_overhead = Time.span_zero;
    dma = None;
  }

let standalone = base
let vkernel = { base with copy_data = Time.span_ms 1.83; copy_ack = Time.span_ms 0.67 }

let double_buffered t = { t with tx_buffers = 2; rx_buffers = 2; busy_wait_tx = false }

let with_dma ?(copy_scale = 2.0) ?(command_us = 100.0) t =
  if not (copy_scale > 0.0) then invalid_arg "Params.with_dma: copy_scale must be positive";
  {
    t with
    dma = Some { copy_scale; command = Time.span_us command_us };
    busy_wait_tx = false;
  }

let data_transmit t =
  Units.transmit_span ~bandwidth_bps:t.bandwidth_bps ~bytes:t.data_packet_bytes

let ack_transmit t =
  Units.transmit_span ~bandwidth_bps:t.bandwidth_bps ~bytes:t.ack_packet_bytes

let copy_cost t ~bytes =
  if bytes < 0 then invalid_arg "Params.copy_cost: negative size";
  if bytes = t.data_packet_bytes then t.copy_data
  else if bytes = t.ack_packet_bytes then t.copy_ack
  else begin
    (* Linear model through the two calibrated points. *)
    let c_data = float_of_int (Time.span_to_ns t.copy_data) in
    let c_ack = float_of_int (Time.span_to_ns t.copy_ack) in
    let slope =
      (c_data -. c_ack) /. float_of_int (t.data_packet_bytes - t.ack_packet_bytes)
    in
    let cost = c_ack +. (slope *. float_of_int (bytes - t.ack_packet_bytes)) in
    Time.span_ns (int_of_float (Float.max 0.0 (Float.round cost)))
  end

let dma_copy_cost t ~bytes =
  match t.dma with
  | None -> copy_cost t ~bytes
  | Some { copy_scale; _ } ->
      let base = float_of_int (Time.span_to_ns (copy_cost t ~bytes)) in
      Time.span_ns (int_of_float (Float.round (base *. copy_scale)))

let is_data_size t ~bytes =
  bytes - t.ack_packet_bytes >= (t.data_packet_bytes - t.ack_packet_bytes) / 2

let packets_for t ~bytes =
  if bytes <= 0 then invalid_arg "Params.packets_for: size must be positive";
  (bytes + t.data_packet_bytes - 1) / t.data_packet_bytes
