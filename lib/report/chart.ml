type series = { name : string; points : (float * float) list }

let glyphs = [| '*'; '+'; 'o'; 'x'; '#'; '@'; '%'; '&' |]

let render ?(width = 72) ?(height = 20) ?(log_x = false) ?(log_y = false) ?(x_label = "x")
    ?(y_label = "y") series =
  let tx x = if log_x then log10 x else x in
  let ty y = if log_y then log10 y else y in
  let usable (x, y) = (not (log_x && x <= 0.0)) && not (log_y && y <= 0.0) in
  let all_points = List.concat_map (fun s -> List.filter usable s.points) series in
  if all_points = [] then "(no data)"
  else begin
    let xs = List.map (fun (x, _) -> tx x) all_points in
    let ys = List.map (fun (_, y) -> ty y) all_points in
    let x_min = List.fold_left min infinity xs and x_max = List.fold_left max neg_infinity xs in
    let y_min = List.fold_left min infinity ys and y_max = List.fold_left max neg_infinity ys in
    let x_span = if x_max > x_min then x_max -. x_min else 1.0 in
    let y_span = if y_max > y_min then y_max -. y_min else 1.0 in
    let grid = Array.make_matrix height width ' ' in
    List.iteri
      (fun index s ->
        let glyph = glyphs.(index mod Array.length glyphs) in
        List.iter
          (fun (x, y) ->
            if usable (x, y) then begin
              let col =
                int_of_float (Float.round ((tx x -. x_min) /. x_span *. float_of_int (width - 1)))
              in
              let row =
                height - 1
                - int_of_float
                    (Float.round ((ty y -. y_min) /. y_span *. float_of_int (height - 1)))
              in
              if row >= 0 && row < height && col >= 0 && col < width then
                grid.(row).(col) <- glyph
            end)
          s.points)
      series;
    let buffer = Buffer.create 4096 in
    let untransform_y v = if log_y then 10.0 ** v else v in
    for row = 0 to height - 1 do
      let y_here =
        y_min +. (y_span *. float_of_int (height - 1 - row) /. float_of_int (height - 1))
      in
      let label =
        if row mod 4 = 0 || row = height - 1 then Printf.sprintf "%10.4g" (untransform_y y_here)
        else String.make 10 ' '
      in
      Buffer.add_string buffer label;
      Buffer.add_string buffer " |";
      Buffer.add_string buffer (String.init width (fun col -> grid.(row).(col)));
      Buffer.add_char buffer '\n'
    done;
    Buffer.add_string buffer (String.make 11 ' ');
    Buffer.add_char buffer '+';
    Buffer.add_string buffer (String.make width '-');
    Buffer.add_char buffer '\n';
    let untransform_x v = if log_x then 10.0 ** v else v in
    Buffer.add_string buffer
      (Printf.sprintf "%12s%.4g%s%.4g  (%s%s)\n" "" (untransform_x x_min)
         (String.make (max 1 (width - 16)) ' ')
         (untransform_x x_max) x_label
         (if log_x then ", log scale" else ""));
    Buffer.add_string buffer (Printf.sprintf "  y: %s%s\n" y_label (if log_y then " (log)" else ""));
    List.iteri
      (fun index s ->
        Buffer.add_string buffer
          (Printf.sprintf "  %c = %s\n" glyphs.(index mod Array.length glyphs) s.name))
      series;
    Buffer.contents buffer
  end
