let needs_quoting s =
  String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s

let escape s =
  if needs_quoting s then begin
    let buffer = Buffer.create (String.length s + 2) in
    Buffer.add_char buffer '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buffer "\"\"" else Buffer.add_char buffer c)
      s;
    Buffer.add_char buffer '"';
    Buffer.contents buffer
  end
  else s

let line cells = String.concat "," (List.map escape cells)

let to_string ~header ~rows =
  String.concat "\n" (line header :: List.map line rows) ^ "\n"

let to_file path ~header ~rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ~header ~rows))
