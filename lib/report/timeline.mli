(** Renders a trace as the paper's Figure 2 / Figure 3 timing diagrams.

    Each lane (a CPU, the wire) becomes one row; activity spans are drawn as
    runs of a glyph chosen by span kind:

    {v
      C  copy of a data packet        c  copy of an ack
      T  data packet on the wire      t  ack on the wire
    v} *)

val glyph_of_kind : string -> char

val render : ?width:int -> Eventsim.Trace.t -> string
(** Scales the whole trace to [width] (default 100) columns. Empty traces
    render as ["(empty trace)"]. *)
