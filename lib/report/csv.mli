(** Minimal CSV output for downstream plotting. *)

val escape : string -> string
(** RFC-4180 quoting when the cell contains commas, quotes or newlines. *)

val line : string list -> string

val to_string : header:string list -> rows:string list list -> string

val to_file : string -> header:string list -> rows:string list list -> unit
