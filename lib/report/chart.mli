(** ASCII line charts, for the paper's Figures 4-6.

    Each series is a set of (x, y) points; x values need not be shared.
    Points are plotted with a per-series glyph, with optional logarithmic
    axes (Figure 5 and 6 use log-x). *)

type series = { name : string; points : (float * float) list }

val render :
  ?width:int ->
  ?height:int ->
  ?log_x:bool ->
  ?log_y:bool ->
  ?x_label:string ->
  ?y_label:string ->
  series list ->
  string
(** Renders the chart with y-axis tick labels and a legend. Points with
    non-positive coordinates on a log axis are skipped. Defaults: 72x20,
    linear axes. *)
