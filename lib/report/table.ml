type align = Left | Right

let pad align width s =
  let gap = width - String.length s in
  if gap <= 0 then s
  else
    match align with
    | Left -> s ^ String.make gap ' '
    | Right -> String.make gap ' ' ^ s

let render ?align ~header ~rows () =
  let arity = List.length header in
  List.iter
    (fun row ->
      if List.length row <> arity then invalid_arg "Table.render: ragged row")
    rows;
  let align =
    match align with
    | Some a ->
        if List.length a <> arity then invalid_arg "Table.render: align arity" else a
    | None -> List.mapi (fun i _ -> if i = 0 then Left else Right) header
  in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      header
  in
  let render_row cells =
    let parts = List.map2 (fun (a, w) c -> pad a w c) (List.combine align widths) cells in
    "| " ^ String.concat " | " parts ^ " |"
  in
  let rule =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "+"
  in
  String.concat "\n"
    (rule :: render_row header :: rule :: (List.map render_row rows @ [ rule ]))

let fmt_ms ms =
  if Float.abs ms >= 100.0 then Printf.sprintf "%.1f" ms
  else if Float.abs ms >= 10.0 then Printf.sprintf "%.2f" ms
  else Printf.sprintf "%.3f" ms

let fmt_pct fraction = Printf.sprintf "%.1f%%" (fraction *. 100.0)
