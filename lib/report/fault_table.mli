(** Renders a fault-injection campaign as an aligned table: one row per run,
    the injected fault counts by kind alongside the receiving side's
    detection counters (checksum rejects and unrecognizable garbage) and the
    run's outcome. Used by the [chaos] CLI subcommand and ad-hoc reports. *)

type row = {
  label : string;  (** e.g. ["blast-gbn/chaos"] *)
  stats : Faults.Netem.stats;  (** what the injector did *)
  corrupt_detected : int;  (** datagrams rejected for a bad checksum *)
  garbage_received : int;  (** undecodable for any other reason *)
  outcome : string;
}

val of_counters :
  label:string ->
  stats:Faults.Netem.stats ->
  outcome:string ->
  Protocol.Counters.t ->
  row
(** Pulls the detection fields out of a transfer's counters. *)

val render : row list -> string
