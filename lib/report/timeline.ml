open Eventsim

let glyph_of_kind = function
  | "copy-data-in" | "copy-data-out" -> 'C'
  | "copy-ack-in" | "copy-ack-out" -> 'c'
  | "transmit-data" -> 'T'
  | "transmit-ack" -> 't'
  | _ -> '#'

let render ?(width = 100) trace =
  let spans = Trace.spans trace in
  if spans = [] then "(empty trace)"
  else begin
    let total_ns = Time.to_ns (Trace.end_time trace) in
    let total_ns = max 1 total_ns in
    let lanes = Trace.lanes trace in
    let label_width =
      List.fold_left (fun acc lane -> max acc (String.length lane)) 0 lanes
    in
    let rows = List.map (fun lane -> (lane, Bytes.make width ' ')) lanes in
    List.iter
      (fun (span : Trace.span) ->
        match List.assoc_opt span.Trace.lane rows with
        | None -> ()
        | Some row ->
            let scale ns = ns * (width - 1) / total_ns in
            let start_col = scale (Time.to_ns span.Trace.start) in
            let stop_col = max (start_col + 1) (scale (Time.to_ns span.Trace.stop)) in
            let glyph = glyph_of_kind span.Trace.kind in
            for col = start_col to min (width - 1) (stop_col - 1) do
              Bytes.set row col glyph
            done)
      spans;
    let header =
      Printf.sprintf "%*s  0%s%.3f ms" label_width ""
        (String.make (max 1 (width - 10)) ' ')
        (float_of_int total_ns /. 1e6)
    in
    let body =
      List.map
        (fun (lane, row) -> Printf.sprintf "%*s |%s|" label_width lane (Bytes.to_string row))
        rows
    in
    String.concat "\n" ((header :: body) @ [ "  C/c copy data/ack   T/t transmit data/ack" ])
  end
