(** Aligned plain-text tables, in the style of the paper's Tables 1-3. *)

type align = Left | Right

val render :
  ?align:align list ->
  header:string list ->
  rows:string list list ->
  unit ->
  string
(** Column widths auto-size to the content; numbers are conventionally passed
    pre-formatted. [align] defaults to [Left] for the first column and
    [Right] for the rest. Raises [Invalid_argument] when a row's arity
    differs from the header's. *)

val fmt_ms : float -> string
(** Milliseconds with a sensible precision: ["4.08"], ["173.2"]. *)

val fmt_pct : float -> string
(** A fraction as a percentage: [0.38] -> ["38.0%"]. *)
