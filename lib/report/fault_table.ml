type row = {
  label : string;
  stats : Faults.Netem.stats;
  corrupt_detected : int;
  garbage_received : int;
  outcome : string;
}

let of_counters ~label ~stats ~outcome (counters : Protocol.Counters.t) =
  {
    label;
    stats;
    corrupt_detected = counters.Protocol.Counters.corrupt_detected;
    garbage_received = counters.Protocol.Counters.garbage_received;
    outcome;
  }

let render rows =
  let d = string_of_int in
  Table.render
    ~header:
      [
        "run"; "drop"; "dup"; "reord"; "corrupt"; "trunc"; "delay"; "injected";
        "rejects"; "garbage"; "outcome";
      ]
    ~rows:
      (List.map
         (fun r ->
           let s = r.stats in
           [
             r.label;
             d s.Faults.Netem.dropped;
             d s.Faults.Netem.duplicated;
             d s.Faults.Netem.reordered;
             d s.Faults.Netem.corrupted;
             d s.Faults.Netem.truncated;
             d s.Faults.Netem.delayed;
             d (Faults.Netem.total s);
             d r.corrupt_detected;
             d r.garbage_received;
             r.outcome;
           ])
         rows)
    ()
