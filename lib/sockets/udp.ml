external monotonic_ns : unit -> int64 = "lanrepro_monotonic_ns"

let create_socket ?(address = "127.0.0.1") ?(port = 0) ?(reuseport = false) () =
  let socket = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  if reuseport then Unix.setsockopt socket Unix.SO_REUSEPORT true;
  Unix.bind socket (Unix.ADDR_INET (Unix.inet_addr_of_string address, port));
  (socket, Unix.getsockname socket)

let close socket = try Unix.close socket with Unix.Unix_error _ -> ()

(* CLOCK_MONOTONIC: all deadline arithmetic in the peer loop depends on this
   never stepping backwards, which the wall clock cannot promise. *)
let now_ns () = Int64.to_int (monotonic_ns ())

type send_outcome = Sent | Send_failed of Unix.error

(* The one EINTR retry budget for every send path. EINTR past the budget is
   still caught by the transient-error classification below, so a signal
   storm degrades to a counted loss, never an exception. *)
let eintr_retry_budget = 8

let rec retry_eintr budget f =
  try f ()
  with Unix.Unix_error (Unix.EINTR, _, _) when budget > 0 -> retry_eintr (budget - 1) f

(* Transient conditions a datagram protocol already recovers from: treat them
   exactly like a packet the network dropped. ECONNREFUSED is loopback's ICMP
   port-unreachable bounce (the peer closed its socket) and used to raise out
   of a transfer; in a multi-flow server one such exception would have taken
   every other flow down with it. *)
let send_bytes socket peer datagram =
  let len = Bytes.length datagram in
  match retry_eintr eintr_retry_budget (fun () -> Unix.sendto socket datagram 0 len [] peer) with
  | sent when sent = len -> Sent
  | _ ->
      (* A datagram socket transmits atomically; a short count would mean
         the kernel truncated the datagram. Surface it as a loss. *)
      Send_failed Unix.EMSGSIZE
  | exception
      Unix.Unix_error
        ( (( Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ENOBUFS | Unix.ENOMEM
           | Unix.ECONNREFUSED | Unix.EHOSTUNREACH | Unix.ENETUNREACH | Unix.ENETDOWN
           | Unix.EMSGSIZE | Unix.EINTR ) as error),
          _,
          _ ) ->
      Send_failed error

let send_message socket peer message = send_bytes socket peer (Packet.Codec.encode message)

let max_datagram_bytes = 65536

let rx_buffer () = Bytes.create max_datagram_bytes

let recv_message ?timeout_ns ?buffer socket =
  (* Callers on a hot loop pass one [rx_buffer] and reuse it; the fallback
     allocation keeps one-shot callers correct (the buffer must not be shared
     across threads). *)
  let buffer = match buffer with Some b -> b | None -> rx_buffer () in
  let timeout =
    match timeout_ns with
    | None -> -1.0
    | Some ns -> Float.max 0.0 (float_of_int ns /. 1e9)
  in
  match Unix.select [ socket ] [] [] timeout with
  | [], _, _ -> `Timeout
  | _ :: _, _, _ -> begin
      let len, from = Unix.recvfrom socket buffer 0 (Bytes.length buffer) [] in
      match Packet.Codec.decode_sub buffer ~pos:0 ~len with
      | Ok message -> `Message (message, from)
      | Error reason -> `Garbage reason
    end
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> `Timeout
