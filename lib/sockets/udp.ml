let create_socket ?(address = "127.0.0.1") () =
  let socket = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  Unix.bind socket (Unix.ADDR_INET (Unix.inet_addr_of_string address, 0));
  (socket, Unix.getsockname socket)

let close socket = try Unix.close socket with Unix.Unix_error _ -> ()
let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let send_message socket peer message =
  let encoded = Packet.Codec.encode message in
  let sent = Unix.sendto socket encoded 0 (Bytes.length encoded) [] peer in
  if sent <> Bytes.length encoded then failwith "Udp.send_message: short send"

let recv_message ?timeout_ns socket =
  (* Allocated per call: receive paths run on multiple threads. *)
  let buffer = Bytes.create 65536 in
  let timeout =
    match timeout_ns with
    | None -> -1.0
    | Some ns -> Float.max 0.0 (float_of_int ns /. 1e9)
  in
  match Unix.select [ socket ] [] [] timeout with
  | [], _, _ -> `Timeout
  | _ :: _, _, _ -> begin
      let len, from = Unix.recvfrom socket buffer 0 (Bytes.length buffer) [] in
      match Packet.Codec.decode_sub buffer ~pos:0 ~len with
      | Ok message -> `Message (message, from)
      | Error _ -> `Garbage
    end
