external monotonic_ns : unit -> int64 = "lanrepro_monotonic_ns"

let create_socket ?(address = "127.0.0.1") () =
  let socket = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  Unix.bind socket (Unix.ADDR_INET (Unix.inet_addr_of_string address, 0));
  (socket, Unix.getsockname socket)

let close socket = try Unix.close socket with Unix.Unix_error _ -> ()

(* CLOCK_MONOTONIC: all deadline arithmetic in the peer loop depends on this
   never stepping backwards, which the wall clock cannot promise. *)
let now_ns () = Int64.to_int (monotonic_ns ())

let send_bytes socket peer datagram =
  let sent = Unix.sendto socket datagram 0 (Bytes.length datagram) [] peer in
  if sent <> Bytes.length datagram then failwith "Udp.send_bytes: short send"

let send_message socket peer message = send_bytes socket peer (Packet.Codec.encode message)

let recv_message ?timeout_ns socket =
  (* Allocated per call: receive paths run on multiple threads. *)
  let buffer = Bytes.create 65536 in
  let timeout =
    match timeout_ns with
    | None -> -1.0
    | Some ns -> Float.max 0.0 (float_of_int ns /. 1e9)
  in
  match Unix.select [ socket ] [] [] timeout with
  | [], _, _ -> `Timeout
  | _ :: _, _, _ -> begin
      let len, from = Unix.recvfrom socket buffer 0 (Bytes.length buffer) [] in
      match Packet.Codec.decode_sub buffer ~pos:0 ~len with
      | Ok message -> `Message (message, from)
      | Error reason -> `Garbage reason
    end
