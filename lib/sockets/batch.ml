(* Packet trains through sendmmsg(2)/recvmmsg(2), with a one-datagram
   fallback that preserves exact per-datagram outcome semantics. See the
   interface for the design contract. *)

external mmsg_supported : unit -> bool = "lanrepro_mmsg_supported"

external raw_sendmmsg : Unix.file_descr -> int -> int -> Bytes.t array -> int array -> int
  = "lanrepro_sendmmsg"

external raw_recvmmsg : Unix.file_descr -> int -> Bytes.t array -> int array -> int
  = "lanrepro_recvmmsg"

(* Must match LANREPRO_MMSG_MAX in mmsg_stubs.c. *)
let stub_max = 256

(* A Linux build on a kernel without the syscalls discovers ENOSYS on the
   first real submission; remember it process-wide so every later batch goes
   straight to the fallback. *)
let runtime_enosys = ref false

let kernel_support () = mmsg_supported () && not !runtime_enosys

let env_value () = Sys.getenv_opt "LANREPRO_BATCH"

let env_enabled () =
  match env_value () with
  | Some ("0" | "off" | "false") -> false
  | Some _ | None -> true

let env_force_fallback () =
  match env_value () with Some ("fallback" | "emulate") -> true | _ -> false

type report = { submitted : int; sent : int; failed : int; syscalls : int }

let zero = { submitted = 0; sent = 0; failed = 0; syscalls = 0 }

let add_report a b =
  {
    submitted = a.submitted + b.submitted;
    sent = a.sent + b.sent;
    failed = a.failed + b.failed;
    syscalls = a.syscalls + b.syscalls;
  }

let pp_report ppf r =
  Format.fprintf ppf "%d submitted, %d sent, %d failed, %d syscalls" r.submitted r.sent
    r.failed r.syscalls

(* IPv4 sockaddr -> (host-order address, port); None for anything the wire
   vectors cannot carry (IPv6, unix sockets), which goes out unbatched. *)
let explode_sockaddr = function
  | Unix.ADDR_UNIX _ -> None
  | Unix.ADDR_INET (address, port) -> begin
      match String.split_on_char '.' (Unix.string_of_inet_addr address) with
      | [ a; b; c; d ] -> begin
          match
            (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c, int_of_string_opt d)
          with
          | Some a, Some b, Some c, Some d
            when a land 0xff = a && b land 0xff = b && c land 0xff = c && d land 0xff = d ->
              Some (((a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d, port))
          | _ -> None
        end
      | _ -> None
    end

(* ------------------------------------------------------------ transmit -- *)

type t = {
  socket : Unix.file_descr;
  tx_capacity : int;
  bufs : Bytes.t array;
  meta : int array;  (** 3 slots per entry: length, address, port *)
  peers : Unix.sockaddr array;  (** original sockaddr, for the fallback path *)
  callbacks : (Udp.send_outcome -> unit) option array;
  forced_fallback : bool;
  addr_cache : (Unix.sockaddr, (int * int) option) Hashtbl.t;
  mutable len : int;
  mutable acc : report;  (** cumulative since create *)
}

let create ?(capacity = 128) ?force_fallback ~socket () =
  if capacity <= 0 then invalid_arg "Batch.create: capacity must be positive";
  let capacity = min capacity stub_max in
  {
    socket;
    tx_capacity = capacity;
    bufs = Array.make capacity Bytes.empty;
    meta = Array.make (3 * capacity) 0;
    peers = Array.make capacity (Unix.ADDR_UNIX "");
    callbacks = Array.make capacity None;
    forced_fallback =
      (match force_fallback with Some f -> f | None -> env_force_fallback ());
    addr_cache = Hashtbl.create 8;
    len = 0;
    acc = zero;
  }

let capacity t = t.tx_capacity
let length t = t.len
let using_fallback t = t.forced_fallback || not (kernel_support ())
let totals t = t.acc

let fire_outcome t i outcome =
  match t.callbacks.(i) with None -> () | Some f -> f outcome

(* Resolve one queued entry through the one-datagram path: a bounded-retry
   sendto that classifies transient failures as loss and raises only on
   genuine programming errors — the exact semantics of the unbatched
   transport, which is what keeps batching invisible to the protocol. *)
let resolve_one t i =
  let outcome = Udp.send_bytes t.socket t.peers.(i) t.bufs.(i) in
  fire_outcome t i outcome;
  match outcome with Udp.Sent -> `Sent | Udp.Send_failed _ -> `Failed

let flush t =
  let n = t.len in
  if n = 0 then zero
  else begin
    let sent = ref 0 and failed = ref 0 and syscalls = ref 0 in
    let one i =
      incr syscalls;
      match resolve_one t i with `Sent -> incr sent | `Failed -> incr failed
    in
    let rest_one_at_a_time from = for i = from to n - 1 do one i done in
    (* A one-datagram train pays the same single syscall either way; skip
       the vector submission so batched train length 1 costs exactly what
       the unbatched path does. *)
    if n = 1 || using_fallback t then rest_one_at_a_time 0
    else begin
      let off = ref 0 in
      while !off < n do
        let want = min (n - !off) stub_max in
        let r = raw_sendmmsg t.socket !off want t.bufs t.meta in
        incr syscalls;
        if r = -2 then begin
          (* Runtime ENOSYS: this submission — and every future one,
             process-wide — takes the fallback. *)
          runtime_enosys := true;
          rest_one_at_a_time !off;
          off := n
        end
        else if r <= 0 then begin
          (* The head datagram failed (transient or genuine); resolving it
             one-at-a-time classifies — or raises — exactly as the
             unbatched path would, then the train continues. *)
          one !off;
          incr off
        end
        else begin
          for i = !off to !off + r - 1 do
            fire_outcome t i Udp.Sent
          done;
          sent := !sent + r;
          off := !off + r;
          (* A short count means the kernel stopped at entry [off]: resolve
             that one precisely rather than spinning on resubmission. *)
          if r < want && !off < n then begin
            one !off;
            incr off
          end
        end
      done
    end;
    (* Drop references so flushed payloads do not outlive their train. *)
    Array.fill t.bufs 0 n Bytes.empty;
    Array.fill t.callbacks 0 n None;
    t.len <- 0;
    let report = { submitted = n; sent = !sent; failed = !failed; syscalls = !syscalls } in
    t.acc <- add_report t.acc report;
    report
  end

let resolve_peer t peer =
  match Hashtbl.find_opt t.addr_cache peer with
  | Some cached -> cached
  | None ->
      let exploded = explode_sockaddr peer in
      Hashtbl.replace t.addr_cache peer exploded;
      exploded

let push t ~peer ?on_outcome data =
  match resolve_peer t peer with
  | None ->
      (* Not representable in the IPv4 wire vectors: send it now, alone. *)
      let outcome = Udp.send_bytes t.socket peer data in
      (match on_outcome with None -> () | Some f -> f outcome);
      let report =
        match outcome with
        | Udp.Sent -> { submitted = 1; sent = 1; failed = 0; syscalls = 1 }
        | Udp.Send_failed _ -> { submitted = 1; sent = 0; failed = 1; syscalls = 1 }
      in
      t.acc <- add_report t.acc report
  | Some (address, port) ->
      if t.len >= t.tx_capacity then ignore (flush t : report);
      let i = t.len in
      t.bufs.(i) <- data;
      t.meta.(3 * i) <- Bytes.length data;
      t.meta.((3 * i) + 1) <- address;
      t.meta.((3 * i) + 2) <- port;
      t.peers.(i) <- peer;
      t.callbacks.(i) <- on_outcome;
      t.len <- i + 1

let push_message t ~peer ?on_outcome message =
  push t ~peer ?on_outcome (Packet.Codec.encode message)

(* ------------------------------------------------------------- receive -- *)

type rx = {
  rx_socket : Unix.file_descr;
  rx_cap : int;
  rx_bufs : Bytes.t array;
  rx_meta : int array;
  rx_froms : Unix.sockaddr array;
  rx_forced_fallback : bool;
  rx_addr_cache : (int, Unix.sockaddr) Hashtbl.t;
  mutable rx_sys : int;
  mutable rx_count : int;
}

let create_rx ?(capacity = 32) ?force_fallback ~socket () =
  if capacity <= 0 then invalid_arg "Batch.create_rx: capacity must be positive";
  let capacity = min capacity stub_max in
  {
    rx_socket = socket;
    rx_cap = capacity;
    rx_bufs = Array.init capacity (fun _ -> Udp.rx_buffer ());
    rx_meta = Array.make (3 * capacity) 0;
    rx_froms = Array.make capacity (Unix.ADDR_UNIX "");
    rx_forced_fallback =
      (match force_fallback with Some f -> f | None -> env_force_fallback ());
    rx_addr_cache = Hashtbl.create 64;
    rx_sys = 0;
    rx_count = 0;
  }

let rx_capacity rx = rx.rx_cap
let rx_syscalls rx = rx.rx_sys
let rx_received rx = rx.rx_count

let sockaddr_of rx address port =
  let key = (address lsl 16) lor (port land 0xffff) in
  match Hashtbl.find_opt rx.rx_addr_cache key with
  | Some sockaddr -> sockaddr
  | None ->
      let dotted =
        Printf.sprintf "%d.%d.%d.%d"
          ((address lsr 24) land 0xff)
          ((address lsr 16) land 0xff)
          ((address lsr 8) land 0xff)
          (address land 0xff)
      in
      let sockaddr = Unix.ADDR_INET (Unix.inet_addr_of_string dotted, port) in
      Hashtbl.replace rx.rx_addr_cache key sockaddr;
      sockaddr

(* One Unix.recvfrom per datagram, same loop the engine ran before batching:
   EAGAIN ends the drain, a pending ICMP error is consumed and skipped. *)
let recv_fallback rx ~want =
  let n = ref 0 in
  (try
     while !n < want do
       rx.rx_sys <- rx.rx_sys + 1;
       match
         Unix.recvfrom rx.rx_socket rx.rx_bufs.(!n) 0 (Bytes.length rx.rx_bufs.(!n)) []
       with
       | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
           raise Exit
       | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> ()
       | len, from ->
           rx.rx_meta.(3 * !n) <- len;
           rx.rx_froms.(!n) <- from;
           incr n
     done
   with Exit -> ());
  !n

let rec recv rx ~limit =
  let want = min limit rx.rx_cap in
  if want <= 0 then 0
  else if rx.rx_forced_fallback || not (kernel_support ()) then begin
    let n = recv_fallback rx ~want in
    rx.rx_count <- rx.rx_count + n;
    n
  end
  else begin
    let r = raw_recvmmsg rx.rx_socket want rx.rx_bufs rx.rx_meta in
    rx.rx_sys <- rx.rx_sys + 1;
    if r >= 0 then begin
      for i = 0 to r - 1 do
        rx.rx_froms.(i) <-
          sockaddr_of rx rx.rx_meta.((3 * i) + 1) rx.rx_meta.((3 * i) + 2)
      done;
      rx.rx_count <- rx.rx_count + r;
      r
    end
    else if r = -1 then 0
    else if r = -3 then
      (* Consumed a pending ICMP port-unreachable (a sender that already
         closed); no datagram was taken, so drain again. *)
      recv rx ~limit
    else if r = -2 then begin
      runtime_enosys := true;
      recv rx ~limit
    end
    else begin
      (* Genuine error: surface it exactly as the unbatched loop would, by
         letting Unix.recvfrom raise (or, if the condition cleared, deliver). *)
      rx.rx_sys <- rx.rx_sys + 1;
      let len, from =
        Unix.recvfrom rx.rx_socket rx.rx_bufs.(0) 0 (Bytes.length rx.rx_bufs.(0)) []
      in
      rx.rx_meta.(0) <- len;
      rx.rx_froms.(0) <- from;
      rx.rx_count <- rx.rx_count + 1;
      1
    end
  end

let get rx i = (rx.rx_bufs.(i), rx.rx_meta.(3 * i), rx.rx_froms.(i))
