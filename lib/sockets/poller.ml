(* Edge-triggered readiness with an explicit wakeup channel, and a portable
   select fallback latched at runtime. See the interface for the contract. *)

external epoll_supported : unit -> bool = "lanrepro_epoll_supported"
external raw_epoll_create : unit -> int = "lanrepro_epoll_create"
external raw_epoll_add : int -> Unix.file_descr -> int -> int = "lanrepro_epoll_add"
external raw_epoll_del : int -> Unix.file_descr -> int = "lanrepro_epoll_del"
external raw_epoll_wait : int -> int -> int = "lanrepro_epoll_wait"
external raw_eventfd : unit -> int = "lanrepro_eventfd"

(* Stubs traffic in raw fds so no OCaml heap pointer is live while the wait
   stub has the runtime lock released; on Unix a file_descr is the fd. *)
external fd_of_int : int -> Unix.file_descr = "%identity"

(* A Linux build on a kernel without epoll discovers ENOSYS on the first
   create; remember it process-wide so every later poller goes straight to
   the select fallback. *)
let runtime_enosys = ref false

let kernel_support () = epoll_supported () && not !runtime_enosys

let env_enabled () =
  match Sys.getenv_opt "LANREPRO_EPOLL" with
  | Some ("0" | "off" | "false" | "fallback" | "select") -> false
  | Some _ | None -> true

(* Registration tags: one bit each in the wait stub's verdict. *)
let data_tag = 0
let wake_tag = 1

type backend =
  | Epoll of { epfd : int; wake_rd : Unix.file_descr; wake_wr : Unix.file_descr }
  | Select of { pipe_rd : Unix.file_descr; pipe_wr : Unix.file_descr }

type t = {
  be : backend;
  mutable fds : Unix.file_descr list;  (* registered data fds *)
  mutable closed : bool;
}

let backend t = match t.be with Epoll _ -> `Epoll | Select _ -> `Select

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* The wakeup channel under epoll: an eventfd when the kernel has one (a
   single fd, both ends), else a nonblocking self-pipe. *)
let make_wake_channel () =
  match raw_eventfd () with
  | fd when fd >= 0 ->
      let fd = fd_of_int fd in
      (fd, fd)
  | _ ->
      let rd, wr = Unix.pipe ~cloexec:true () in
      Unix.set_nonblock rd;
      Unix.set_nonblock wr;
      (rd, wr)

let make_select () =
  let rd, wr = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock rd;
  Unix.set_nonblock wr;
  Select { pipe_rd = rd; pipe_wr = wr }

let create () =
  let be =
    if not (env_enabled () && kernel_support ()) then make_select ()
    else
      match raw_epoll_create () with
      | epfd when epfd >= 0 -> (
          let wake_rd, wake_wr = make_wake_channel () in
          match raw_epoll_add epfd wake_rd wake_tag with
          | 0 -> Epoll { epfd; wake_rd; wake_wr }
          | code ->
              close_quiet (fd_of_int epfd);
              close_quiet wake_rd;
              if wake_rd != wake_wr then close_quiet wake_wr;
              if code = -2 then runtime_enosys := true;
              make_select ())
      | -2 ->
          runtime_enosys := true;
          make_select ()
      | _ -> make_select ()
  in
  { be; fds = []; closed = false }

let add t fd =
  if t.closed then invalid_arg "Poller.add: closed";
  if not (List.memq fd t.fds) then begin
    (match t.be with
    | Epoll { epfd; _ } ->
        if raw_epoll_add epfd fd data_tag <> 0 then
          raise (Unix.Unix_error (Unix.EINVAL, "epoll_ctl", "add"))
    | Select _ -> ());
    t.fds <- fd :: t.fds
  end

let remove t fd =
  if not t.closed then begin
    (match t.be with
    | Epoll { epfd; _ } -> ignore (raw_epoll_del epfd fd : int)
    | Select _ -> ());
    t.fds <- List.filter (fun f -> f != fd) t.fds
  end

(* Drain the wakeup channel so a coalesced burst of wakes costs one
   spurious return, not one per wake. *)
let drain_wake fd =
  let buf = Bytes.create 64 in
  let rec loop () =
    match Unix.read fd buf 0 (Bytes.length buf) with
    | n when n > 0 -> loop ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | exception Unix.Unix_error (_, _, _) -> ()
  in
  loop ()

let timeout_ms_of_ns = function
  | None -> -1
  | Some ns when ns <= 0 -> 0
  | Some ns -> (ns + 999_999) / 1_000_000 (* round up: never spin before a deadline *)

let wait t ~timeout_ns =
  if t.closed then invalid_arg "Poller.wait: closed";
  match t.be with
  | Epoll { epfd; wake_rd; _ } -> (
      match raw_epoll_wait epfd (timeout_ms_of_ns timeout_ns) with
      | 0 -> `Timeout
      | -1 -> `Ready (* EINTR: the caller polls, finds nothing, and re-waits *)
      | mask when mask > 0 ->
          if mask land (1 lsl wake_tag) <> 0 then begin
            drain_wake wake_rd;
            `Woken
          end
          else `Ready
      | -2 | -3 | _ -> invalid_arg "Poller.wait: epoll_wait failed")
  | Select { pipe_rd; _ } -> (
      let timeout =
        match timeout_ns with
        | None -> -1.0
        | Some ns -> Float.max 0.0 (float_of_int ns /. 1e9)
      in
      match Unix.select (pipe_rd :: t.fds) [] [] timeout with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> `Ready
      | [], _, _ -> `Timeout
      | ready, _, _ ->
          if List.memq pipe_rd ready then begin
            drain_wake pipe_rd;
            `Woken
          end
          else `Ready)

let wake t =
  if not t.closed then begin
    let wr =
      match t.be with
      | Epoll { wake_wr; _ } -> wake_wr
      | Select { pipe_wr; _ } -> pipe_wr
    in
    (* An eventfd write is an 8-byte counter increment; a pipe takes any
       byte. 8 bytes satisfies both. A full pipe already guarantees a
       pending wake, so EAGAIN is success; a racing close is benign. *)
    let one = Bytes.make 8 '\000' in
    Bytes.set one 7 '\001';
    try ignore (Unix.write wr one 0 8) with Unix.Unix_error _ -> ()
  end

let close t =
  if not t.closed then begin
    t.closed <- true;
    t.fds <- [];
    match t.be with
    | Epoll { epfd; wake_rd; wake_wr } ->
        close_quiet (fd_of_int epfd);
        close_quiet wake_rd;
        if wake_rd != wake_wr then close_quiet wake_wr
    | Select { pipe_rd; pipe_wr } ->
        close_quiet pipe_rd;
        close_quiet pipe_wr
  end
