type view = { buf : Bytes.t; len : int; from : Unix.sockaddr }

type t = {
  send : peer:Unix.sockaddr -> on_outcome:(Udp.send_outcome -> unit) -> bytes -> unit;
  flush : unit -> unit;
  recv : timeout_ns:int option -> [ `Timeout | `Datagram of view ];
  poll : unit -> [ `Empty | `Datagram of view ];
  sleep_ns : int -> unit;
  wake : (unit -> unit) option;
}

let udp ?batch ?(rx_capacity = 64) ?poller ~socket () =
  let batch = match batch with Some b -> b | None -> Batch.env_enabled () in
  (* A blast sender can land dozens of datagrams between two wake-ups;
     headroom in the kernel buffer is what keeps that from becoming loss.
     Best effort: the kernel may clamp it. *)
  (try Unix.setsockopt_int socket Unix.SO_RCVBUF (4 * 1024 * 1024)
   with Unix.Unix_error _ -> ());
  Unix.set_nonblock socket;
  let tx = if batch then Some (Batch.create ~socket ()) else None in
  let rx = if batch then Some (Batch.create_rx ~capacity:rx_capacity ~socket ()) else None in
  let buffer = Udp.rx_buffer () in
  let send ~peer ~on_outcome data =
    match tx with
    | Some b -> Batch.push b ~peer ~on_outcome data
    | None -> on_outcome (Udp.send_bytes socket peer data)
  in
  let flush () =
    match tx with None -> () | Some b -> ignore (Batch.flush b : Batch.report)
  in
  (* Ring state for the recvmmsg drain: [poll] serves leftovers of the last
     kernel crossing before asking for another. *)
  let rx_count = ref 0 in
  let rx_next = ref 0 in
  let rec poll_socket () =
    match Unix.recvfrom socket buffer 0 (Bytes.length buffer) [] with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
        `Empty
    | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) ->
        (* Linux surfaces a pending ICMP port-unreachable (a peer that
           already closed) on the next receive; it consumes no datagram. *)
        poll_socket ()
    | len, from -> `Datagram { buf = buffer; len; from }
  in
  let poll () =
    match rx with
    | None -> poll_socket ()
    | Some ring ->
        if !rx_next >= !rx_count then begin
          rx_count := Batch.recv ring ~limit:(Batch.rx_capacity ring);
          rx_next := 0
        end;
        if !rx_next >= !rx_count then `Empty
        else begin
          let buf, len, from = Batch.get ring !rx_next in
          incr rx_next;
          `Datagram { buf; len; from }
        end
  in
  (* The blocking wait. With a poller the socket is registered for
     edge-triggered readiness — safe because this wait only runs after
     [poll] drained the socket to EAGAIN, so every future datagram is a
     fresh edge — and an explicit [Poller.wake] surfaces as [`Timeout]
     (the caller re-checks its own state, e.g. a stop flag). Without a
     poller the wait is the classic one-socket select and [wake] is
     absent. *)
  Option.iter (fun p -> Poller.add p socket) poller;
  let wait_ready =
    match poller with
    | Some p ->
        fun deadline ->
          let timeout_ns =
            Option.map (fun d -> max 0 (d - Udp.now_ns ())) deadline
          in
          (match Poller.wait p ~timeout_ns with
          | `Timeout | `Woken -> `Expired
          | `Ready -> `Check)
    | None -> (
        fun deadline ->
          let timeout =
            match deadline with
            | None -> -1.0
            | Some d -> Float.max 0.0 (float_of_int (d - Udp.now_ns ()) /. 1e9)
          in
          match Unix.select [ socket ] [] [] timeout with
          | [], _, _ -> `Expired
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> `Check
          | _ :: _, _, _ -> `Check)
  in
  let recv ~timeout_ns =
    (* Leftovers from the last drain come first, or a datagram queued behind
       them would be served out of order. *)
    match poll () with
    | `Datagram d -> `Datagram d
    | `Empty ->
        let deadline = Option.map (fun ns -> Udp.now_ns () + ns) timeout_ns in
        let rec wait () =
          match wait_ready deadline with
          | `Expired -> `Timeout
          | `Check -> ( match poll () with `Datagram d -> `Datagram d | `Empty -> again ())
        and again () =
          (* Spurious wake (signal, consumed ICMP error, checksum-dropped
             datagram): wait out the rest of the window. *)
          match deadline with
          | Some d when d - Udp.now_ns () <= 0 -> `Timeout
          | _ -> wait ()
        in
        wait ()
  in
  {
    send;
    flush;
    recv;
    poll;
    sleep_ns = (fun ns -> Unix.sleepf (float_of_int ns /. 1e9));
    wake = Option.map (fun p () -> Poller.wake p) poller;
  }

let recv_message t ?timeout_ns () =
  match t.recv ~timeout_ns with
  | `Timeout -> `Timeout
  | `Datagram { buf; len; from } -> (
      match Packet.Codec.decode_sub buf ~pos:0 ~len with
      | Ok message -> `Message (message, from)
      | Error reason -> `Garbage reason)
