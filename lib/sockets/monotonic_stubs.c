/* CLOCK_MONOTONIC in integer nanoseconds.

   Unix.gettimeofday is a wall clock: NTP steps and manual adjustments can
   move it backwards, which poisons RTT samples and deadline arithmetic in
   the peer loop. The OCaml standard library exposes no monotonic clock, so
   this one-function stub does. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value lanrepro_monotonic_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000LL + (int64_t)ts.tv_nsec);
}
