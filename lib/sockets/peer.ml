let log = Logs.Src.create "sockets.peer" ~doc:"UDP bulk-transfer peer"

module Log = (val Logs.src_log log : Logs.LOG)

type send_result = {
  outcome : Protocol.Action.outcome;
  elapsed_ns : int;
  counters : Protocol.Counters.t;
  adaptive : bool;
}

type integrity = Flow.integrity = Verified | Mismatch | Not_carried

type receive_result = {
  data : string;
  transfer_id : int;
  receive_counters : Protocol.Counters.t;
  integrity : integrity;
      (** whole-segment CRC check: [Verified]/[Mismatch] when the sender
          carried one in the REQ, [Not_carried] otherwise *)
  receive_outcome : Protocol.Action.outcome;
      (** [Success] for a completed transfer; [Peer_unreachable] when the
          idle watchdog aborted because the sender went silent *)
}

(* One outgoing message through the loss coin and the fault pipeline. The
   datagram goes out through the transport — queued into the current train
   when the transport batches; the caller flushes at the end of each action
   burst. Delayed emissions are realized inline (the train so far is flushed,
   then the datagram, and everything behind it, goes out late) —
   head-of-line delay rather than per-datagram jitter, which is what a slow
   link does to a single UDP flow anyway. Scenario validation caps delays at
   one second so a faulted sender can never stall unboundedly. *)
let transmit ?faults ~probe ~lossy ~(transport : Transport.t) ~peer message =
  (* The journal entry fires per protocol send, before the loss coin — the
     machine's counters account the send either way, and the events must
     agree with them exactly. *)
  Obs.Probe.tx probe message;
  if Lossy.pass_tx lossy then begin
    (* A transient send failure is loss: account it like the loss coin. *)
    let put = function
      | Udp.Sent -> ()
      | Udp.Send_failed _ -> Obs.Probe.drop probe `Tx
    in
    match faults with
    | None -> transport.Transport.send ~peer ~on_outcome:put (Packet.Codec.encode message)
    | Some netem ->
        List.iter
          (fun { Faults.Netem.delay_ns; data } ->
            if delay_ns > 0 then begin
              (* Everything ahead of the delayed datagram must hit the wire
                 before we stall, or the delay would reorder the train. *)
              transport.Transport.flush ();
              transport.Transport.sleep_ns delay_ns
            end;
            transport.Transport.send ~peer ~on_outcome:put data)
          (Faults.Netem.tx_bytes netem (Packet.Codec.encode message))
  end
  else Obs.Probe.drop probe `Tx

let count_garbage = Flow.count_garbage

(* Runs a sender machine over the transport until it completes or the idle
   watchdog trips. [idle_timeout_ns] bounds the wait for the next datagram
   independently of the protocol timer: without the watchdog a receiver that
   dies mid-transfer could block this loop on suites whose sender is waiting
   for an ack with no timer armed. (The receiver side no longer runs through
   here — it drives the sans-IO {!Flow} engine instead.)

   [pacing] is sampled per data packet, so an adaptive controller can steer
   the gap round by round. *)
let run_machine ?faults ?(lossy = Lossy.perfect) ?rtt ?(pacing = fun () -> 0)
    ?idle_timeout_ns ~clock ~probe ~(transport : Transport.t) ~peer ~transfer_id
    ~(machine : Protocol.Machine.t) () =
  let deadline = ref None in
  let idle_deadline = ref (Option.map (fun ns -> clock () + ns) idle_timeout_ns) in
  let reset_idle () = idle_deadline := Option.map (fun ns -> clock () + ns) idle_timeout_ns in
  let last_send = ref None in
  let timed_out_since_send = ref false in
  let execute action =
    match action with
    | Protocol.Action.Send m ->
        transmit ?faults ~probe ~lossy ~transport ~peer m;
        (* Pacing: an unthrottled blast overruns the receiver's socket
           buffer exactly as the paper's 3-Com overran at full speed; a
           small inter-packet gap avoids the drops instead of repairing
           them. (Pacing and batching are mutually exclusive — the caller
           builds an unbatched transport when pacing — since a train
           submitted in one syscall has no inter-packet gaps.) *)
        (if m.Packet.Message.kind = Packet.Kind.Data then
           let gap = pacing () in
           if gap > 0 then transport.Transport.sleep_ns gap);
        last_send := Some (clock ());
        timed_out_since_send := false
    | Protocol.Action.Arm_timer ns ->
        let ns = match rtt with Some r -> Protocol.Rtt.timeout_ns r | None -> ns in
        deadline := Some (clock () + ns)
    | Protocol.Action.Stop_timer -> deadline := None
    | Protocol.Action.Deliver { seq; _ } ->
        (* Sender machines do not deliver; keep the event for the journal. *)
        Obs.Probe.deliver probe ~seq
    | Protocol.Action.Complete _ -> ()
  in
  let handle event =
    (match event with
    | Protocol.Action.Timeout -> Obs.Probe.timeout probe ()
    | Protocol.Action.Message m -> Obs.Probe.rx probe m);
    (* Adaptive timeout: sample clean round trips, back off on expiry
       (Karn's rule). *)
    (match (rtt, event) with
    | Some r, Protocol.Action.Timeout ->
        timed_out_since_send := true;
        Protocol.Rtt.backoff r
    | Some r, Protocol.Action.Message _ -> begin
        match !last_send with
        | Some sent when not !timed_out_since_send ->
            let sample_ns = clock () - sent in
            if sample_ns > 0 then Protocol.Rtt.observe r ~sample_ns
        | _ -> ()
      end
    | None, _ -> ());
    List.iter execute (machine.Protocol.Machine.handle event);
    (* The whole action burst — a blast round, typically — goes out as one
       train: this is the sender's sendmmsg hot path. *)
    transport.Transport.flush ();
    match event with
    | Protocol.Action.Message m -> Obs.Probe.handled probe m
    | Protocol.Action.Timeout -> ()
  in
  List.iter execute (machine.Protocol.Machine.start ());
  transport.Transport.flush ();
  let watchdog_fired = ref false in
  while (not (machine.Protocol.Machine.is_complete ())) && not !watchdog_fired do
    let now = clock () in
    match !deadline with
    | Some d when d - now <= 0 ->
        deadline := None;
        handle Protocol.Action.Timeout
    | _ -> begin
        let remaining until = Option.map (fun d -> d - now) until in
        let timeout_ns =
          match (remaining !deadline, remaining !idle_deadline) with
          | None, None -> None
          | (Some _ as t), None | None, (Some _ as t) -> t
          | Some a, Some b -> Some (min a b)
        in
        match Transport.recv_message transport ?timeout_ns () with
        | `Timeout -> begin
            let now = clock () in
            match !deadline with
            | Some d when d - now <= 0 ->
                deadline := None;
                handle Protocol.Action.Timeout
            | _ -> begin
                match !idle_deadline with
                | Some d when d - now <= 0 ->
                    Log.debug (fun f ->
                        f "idle watchdog: no datagram for %.1f ms, aborting"
                          (float_of_int (Option.get idle_timeout_ns) /. 1e6));
                    watchdog_fired := true
                | _ -> () (* spurious early wake; loop *)
              end
          end
        | `Garbage reason ->
            reset_idle ();
            count_garbage ~probe machine.Protocol.Machine.counters reason;
            Log.debug (fun f ->
                f "dropping undecodable datagram (%a)" Packet.Codec.pp_error reason)
        | `Message (m, _) ->
            reset_idle ();
            if Lossy.pass_rx lossy then begin
              if m.Packet.Message.transfer_id = transfer_id then
                handle (Protocol.Action.Message m)
            end
            else Obs.Probe.drop probe `Rx
      end
  done;
  if !watchdog_fired then begin
    Obs.Probe.timeout probe ~detail:"idle-watchdog" ();
    `Peer_idle
  end
  else `Completed

(* Inter-packet gap for a fixed tuning. [Rtt_spread] without an adaptive
   controller spreads a nominal 32-packet train across the smoothed RTT. *)
let fixed_pacing ~tuning ~rtt () =
  match Protocol.Tuning.pacing tuning with
  | Protocol.Tuning.No_pacing -> 0
  | Protocol.Tuning.Fixed_gap ns -> ns
  | Protocol.Tuning.Rtt_spread -> (
      match Option.bind rtt Protocol.Rtt.srtt_ns with
      | Some srtt when srtt > 0 -> srtt / 32
      | Some _ | None -> 0)

let send_via ?ctx ?(lossy = Lossy.perfect) ?transfer_id ?(packet_bytes = 1024) ?rtt
    ?idle_timeout_ns ?stripe ~transport ~peer ~suite ~data () =
  if String.length data = 0 then invalid_arg "Peer.send: empty data";
  let ctx = match ctx with Some c -> c | None -> Io_ctx.default () in
  let { Io_ctx.faults; recorder; metrics; clock; batch = _; tuning } = ctx in
  let transfer_id =
    match transfer_id with Some id -> id | None -> Protocol.Config.fresh_transfer_id ()
  in
  let retransmit_ns = Protocol.Tuning.retransmit_ns tuning in
  let max_attempts = Protocol.Tuning.max_attempts tuning in
  let idle_timeout_ns =
    Option.value idle_timeout_ns ~default:(max_attempts * retransmit_ns)
  in
  (* RTT estimation is load-bearing for adaptive tuning (pacing and timeout
     both derive from it), an opt-in refinement otherwise. *)
  let rtt =
    match rtt with
    | Some _ as r -> r
    | None ->
        if Protocol.Tuning.is_adaptive tuning then
          Some (Protocol.Rtt.create ~initial_ns:retransmit_ns ())
        else None
  in
  let counters = Protocol.Counters.create () in
  (* Journal timestamps come from the context clock on this transport. *)
  Option.iter (fun r -> Obs.Recorder.set_clock r clock) recorder;
  let probe = Obs.Probe.create ?recorder ~lane:"sender" ~counters () in
  (match faults with
  | Some netem ->
      Faults.Netem.attach_counters netem counters;
      Faults.Netem.set_observer netem (Obs.Probe.fault probe)
  | None -> ());
  let total_bytes = String.length data in
  let total_packets = (total_bytes + packet_bytes - 1) / packet_bytes in
  (* Reliable handshake: repeat REQ until ACK seq=0 comes back, then run the
     machine. A peer that never answers is a clean [Peer_unreachable], not an
     exception: chaos campaigns treat it as a bounded, reportable outcome. *)
  let req =
    {
      (Packet.Message.req ~transfer_id ~total:total_packets) with
      Packet.Message.payload =
        Suite_codec.encode ~data_crc:(Packet.Checksum.crc32_string data) ?stripe
          ~packet_bytes ~total_bytes suite;
    }
  in
  (* An adaptive sender announces itself with a budget-stamped (wire v2)
     REQ. An old receiver drops v2 as undecodable, so after two silent
     attempts the sender starts alternating plain v1 REQs: whichever
     version draws the ACK decides the regime — a budget on the handshake
     ACK confirms adaptive trains, a bare ACK negotiates down to fixed. *)
  let adaptive_wanted = Protocol.Tuning.is_adaptive tuning in
  let req_for attempt =
    if adaptive_wanted && (attempt <= 2 || attempt mod 2 = 1) then
      Packet.Message.with_budget req 0
    else req
  in
  let started = clock () in
  let finish ~outcome ~elapsed_ns ~adaptive =
    Obs.Probe.complete probe outcome;
    (match outcome with
    | Protocol.Action.Success -> ()
    | Protocol.Action.Too_many_attempts | Protocol.Action.Peer_unreachable
    | Protocol.Action.Rejected ->
        ignore
          (Obs.Probe.postmortem probe
             ~reason:(Format.asprintf "send: %a" Protocol.Action.pp_outcome outcome)
            : string option));
    (match metrics with
    | None -> ()
    | Some m ->
        let labels = [ ("side", "sender"); ("transport", "udp") ] in
        Obs.Metrics.bridge_counters m ~labels counters;
        Obs.Metrics.set_gauge
          (Obs.Metrics.gauge m ~labels "elapsed_ms")
          (float_of_int elapsed_ns /. 1e6));
    { outcome; elapsed_ns; counters; adaptive }
  in
  (* The handshake is strictly send-one-wait-one, so it gains nothing from a
     train; each REQ is flushed out on its own. *)
  let rec handshake attempt =
    if attempt > max_attempts then `Unreachable
    else begin
      transmit ?faults ~probe ~lossy ~transport ~peer (req_for attempt);
      transport.Transport.flush ();
      match Transport.recv_message transport ~timeout_ns:retransmit_ns () with
      | `Timeout ->
          Obs.Probe.timeout probe ~detail:"handshake" ();
          handshake (attempt + 1)
      | `Garbage reason ->
          count_garbage ~probe counters reason;
          handshake (attempt + 1)
      | `Message (m, _) ->
          if not (Lossy.pass_rx lossy) || m.Packet.Message.transfer_id <> transfer_id then
            handshake (attempt + 1)
          else begin
            match m.Packet.Message.kind with
            | Packet.Kind.Ack when m.Packet.Message.seq = 0 ->
                `Acknowledged (Packet.Message.budget m)
            | Packet.Kind.Rej ->
                (* Admission refusal from a saturated server: retrying into
                   it only adds load, so the sender gives up immediately
                   with the clean, typed outcome. *)
                Obs.Probe.rx probe m;
                `Rejected
            | _ -> handshake (attempt + 1)
          end
    end
  in
  match handshake 1 with
  | `Unreachable ->
      Log.info (fun f -> f "handshake exhausted %d attempts; peer unreachable" max_attempts);
      finish ~outcome:Protocol.Action.Peer_unreachable ~elapsed_ns:(clock () - started)
        ~adaptive:false
  | `Rejected ->
      Log.info (fun f -> f "transfer %d rejected: server at capacity" transfer_id);
      finish ~outcome:Protocol.Action.Rejected ~elapsed_ns:(clock () - started)
        ~adaptive:false
  | `Acknowledged handshake_budget ->
      let adaptive = adaptive_wanted && handshake_budget <> None in
      let tuning =
        if adaptive then tuning else Protocol.Tuning.negotiate_down tuning
      in
      let config =
        Protocol.Config.make ~transfer_id ~packet_bytes ~tuning ~total_packets ()
      in
      let ctrl =
        if adaptive then
          let c = Protocol.Adapt.create (Option.get (Protocol.Tuning.aimd tuning)) in
          (match handshake_budget with
          | Some b when b > 0 ->
              Protocol.Adapt.on_budget c ~budget:b;
              (* Open at the receiver's advertisement: flow control already
                 said this train fits, so skip the additive ramp. *)
              Protocol.Adapt.open_train c ~train:b
          | _ -> ());
          Some c
        else None
      in
      let pacing =
        match ctrl with
        | Some c ->
            fun () ->
              Protocol.Adapt.pacing_gap_ns c
                ~srtt_ns:(Option.bind rtt Protocol.Rtt.srtt_ns)
        | None -> fixed_pacing ~tuning ~rtt
      in
      let payload seq =
        let offset = seq * packet_bytes in
        String.sub data offset (min packet_bytes (total_bytes - offset))
      in
      let machine = Protocol.Suite.sender suite ~counters ?ctrl config ~payload in
      let started = clock () in
      let status =
        run_machine ?faults ~lossy ?rtt ~pacing ~idle_timeout_ns ~clock ~probe ~transport
          ~peer ~transfer_id ~machine ()
      in
      (match faults with
      | Some netem -> ignore (Faults.Netem.flush netem : Faults.Netem.emission list)
      | None -> ());
      transport.Transport.flush ();
      let outcome =
        match status with
        | `Peer_idle -> Protocol.Action.Peer_unreachable
        | `Completed -> (
            match machine.Protocol.Machine.outcome () with
            | Some outcome -> outcome
            | None -> Protocol.Action.Peer_unreachable)
      in
      finish ~outcome ~elapsed_ns:(clock () - started) ~adaptive

let send ?ctx ?lossy ?transfer_id ?packet_bytes ?rtt ?idle_timeout_ns ?stripe ~socket
    ~peer ~suite ~data () =
  let ctx = match ctx with Some c -> c | None -> Io_ctx.default () in
  (* Pacing wants an inter-packet gap, batching erases them: a paced sender
     stays on the one-datagram path. *)
  let batch =
    ctx.Io_ctx.batch
    && Protocol.Tuning.pacing ctx.Io_ctx.tuning = Protocol.Tuning.No_pacing
  in
  let transport = Transport.udp ~batch ~socket () in
  send_via ~ctx ?lossy ?transfer_id ?packet_bytes ?rtt ?idle_timeout_ns ?stripe ~transport
    ~peer ~suite ~data ()

let serve_one_via ?ctx ?(lossy = Lossy.perfect) ?linger_ns ?idle_timeout_ns
    ?accept_timeout_ns ?suite ~(transport : Transport.t) () =
  let ctx = match ctx with Some c -> c | None -> Io_ctx.default () in
  let { Io_ctx.faults; recorder; metrics; clock; batch = _; tuning } = ctx in
  let counters = Protocol.Counters.create () in
  Option.iter (fun r -> Obs.Recorder.set_clock r clock) recorder;
  let probe = Obs.Probe.create ?recorder ~lane:"receiver" ~counters () in
  (match faults with
  | Some netem ->
      Faults.Netem.attach_counters netem counters;
      Faults.Netem.set_observer netem (Obs.Probe.fault probe)
  | None -> ());
  let publish_metrics () =
    match metrics with
    | None -> ()
    | Some m ->
        Obs.Metrics.bridge_counters m
          ~labels:[ ("side", "receiver"); ("transport", "udp") ]
          counters
  in
  let result_of_completion (c : Flow.completion) =
    publish_metrics ();
    {
      data = c.Flow.data;
      transfer_id = c.Flow.transfer_id;
      receive_counters = c.Flow.counters;
      integrity = c.Flow.integrity;
      receive_outcome = c.Flow.outcome;
    }
  in
  (* Wait for a geometry-carrying REQ; [accept_timeout_ns] bounds even this
     initial wait when the caller needs a guaranteed return. The sans-IO
     {!Flow} engine takes over from the REQ onwards; this loop only owns the
     transport, the clock, and the loss coin. *)
  let accept_deadline = Option.map (fun ns -> clock () + ns) accept_timeout_ns in
  let rec await_flow () =
    let timeout_ns = Option.map (fun d -> d - clock ()) accept_deadline in
    match timeout_ns with
    | Some remaining when remaining <= 0 -> `Gone
    | _ -> begin
        match Transport.recv_message transport ?timeout_ns () with
        | `Timeout -> if accept_deadline = None then await_flow () else `Gone
        | `Garbage reason ->
            count_garbage ~probe counters reason;
            await_flow ()
        | `Message (m, from) -> begin
            if not (Lossy.pass_rx lossy) then begin
              Obs.Probe.drop probe `Rx;
              await_flow ()
            end
            else
              match
                Flow.create ?fallback_suite:suite ~tuning ?idle_timeout_ns ?linger_ns
                  ~probe ~counters ~now:(clock ()) m
              with
              | Ok (flow, actions) -> `Flow (flow, actions, from)
              | Error (`Not_a_req | `Bad_geometry) -> await_flow ()
          end
      end
  in
  match await_flow () with
  | `Gone ->
      Obs.Probe.complete probe Protocol.Action.Peer_unreachable;
      ignore
        (Obs.Probe.postmortem probe ~reason:"serve_one: peer unreachable" : string option);
      publish_metrics ();
      {
        data = "";
        transfer_id = 0;
        receive_counters = counters;
        integrity = Not_carried;
        receive_outcome = Protocol.Action.Peer_unreachable;
      }
  | `Flow (flow, actions, sender_address) ->
      let execute actions =
        List.iter
          (fun (Flow.Transmit m) ->
            transmit ?faults ~probe ~lossy ~transport ~peer:sender_address m)
          actions;
        transport.Transport.flush ()
      in
      execute actions;
      let rec drive () =
        match Flow.status flow with
        | `Done completion -> completion
        | `Running | `Lingering -> begin
            let now = clock () in
            (* A live flow always has a deadline (watchdog or linger). *)
            let deadline = Option.value (Flow.next_deadline flow) ~default:now in
            if deadline - now <= 0 then begin
              execute (Flow.on_tick flow ~now);
              drive ()
            end
            else begin
              (match Transport.recv_message transport ~timeout_ns:(deadline - now) () with
              | `Timeout -> execute (Flow.on_tick flow ~now:(clock ()))
              | `Garbage reason -> Flow.on_garbage flow ~now:(clock ()) reason
              | `Message (m, _) ->
                  if Lossy.pass_rx lossy then begin
                    if m.Packet.Message.transfer_id = Flow.transfer_id flow then
                      execute (Flow.on_message flow ~now:(clock ()) m)
                  end
                  else Obs.Probe.drop probe `Rx);
              drive ()
            end
          end
      in
      let completion = drive () in
      (match faults with
      | Some netem -> ignore (Faults.Netem.flush netem : Faults.Netem.emission list)
      | None -> ());
      transport.Transport.flush ();
      result_of_completion completion

let serve_one ?ctx ?lossy ?linger_ns ?idle_timeout_ns ?accept_timeout_ns ?suite ~socket ()
    =
  let ctx = match ctx with Some c -> c | None -> Io_ctx.default () in
  let transport = Transport.udp ~batch:ctx.Io_ctx.batch ~socket () in
  serve_one_via ~ctx ?lossy ?linger_ns ?idle_timeout_ns ?accept_timeout_ns ?suite
    ~transport ()
