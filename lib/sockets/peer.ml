let log = Logs.Src.create "sockets.peer" ~doc:"UDP bulk-transfer peer"

module Log = (val Logs.src_log log : Logs.LOG)

type send_result = {
  outcome : Protocol.Action.outcome;
  elapsed_ns : int;
  counters : Protocol.Counters.t;
}

type integrity = Verified | Mismatch | Not_carried

type receive_result = {
  data : string;
  transfer_id : int;
  receive_counters : Protocol.Counters.t;
  integrity : integrity;
      (** whole-segment CRC check: [Verified]/[Mismatch] when the sender
          carried one in the REQ, [Not_carried] otherwise *)
}

(* Runs a machine over the socket until it completes. [extra] intercepts
   messages the machine itself does not understand (duplicate REQs on the
   receiver side). *)
let run_machine ?(lossy = Lossy.perfect) ?(extra = fun _ -> ()) ?rtt ?(pacing_ns = 0) ~socket
    ~peer ~transfer_id ~(machine : Protocol.Machine.t) ~deliver () =
  let deadline = ref None in
  let last_send = ref None in
  let timed_out_since_send = ref false in
  let execute action =
    match action with
    | Protocol.Action.Send m ->
        if Lossy.pass_tx lossy then Udp.send_message socket peer m;
        (* Pacing: an unthrottled blast overruns the receiver's socket
           buffer exactly as the paper's 3-Com overran at full speed; a
           small inter-packet gap avoids the drops instead of repairing
           them. *)
        if pacing_ns > 0 && m.Packet.Message.kind = Packet.Kind.Data then
          Unix.sleepf (float_of_int pacing_ns /. 1e9);
        last_send := Some (Udp.now_ns ());
        timed_out_since_send := false
    | Protocol.Action.Arm_timer ns ->
        let ns = match rtt with Some r -> Protocol.Rtt.timeout_ns r | None -> ns in
        deadline := Some (Udp.now_ns () + ns)
    | Protocol.Action.Stop_timer -> deadline := None
    | Protocol.Action.Deliver { seq; payload } -> deliver seq payload
    | Protocol.Action.Complete _ -> ()
  in
  let handle event =
    (* Adaptive timeout: sample clean round trips, back off on expiry
       (Karn's rule). *)
    (match (rtt, event) with
    | Some r, Protocol.Action.Timeout ->
        timed_out_since_send := true;
        Protocol.Rtt.backoff r
    | Some r, Protocol.Action.Message _ -> begin
        match !last_send with
        | Some sent when not !timed_out_since_send ->
            let sample_ns = Udp.now_ns () - sent in
            if sample_ns > 0 then Protocol.Rtt.observe r ~sample_ns
        | _ -> ()
      end
    | None, _ -> ());
    List.iter execute (machine.Protocol.Machine.handle event)
  in
  List.iter execute (machine.Protocol.Machine.start ());
  while not (machine.Protocol.Machine.is_complete ()) do
    let timeout_ns = Option.map (fun d -> d - Udp.now_ns ()) !deadline in
    match timeout_ns with
    | Some remaining when remaining <= 0 ->
        deadline := None;
        handle Protocol.Action.Timeout
    | _ -> begin
        match Udp.recv_message ?timeout_ns socket with
        | `Timeout ->
            deadline := None;
            handle Protocol.Action.Timeout
        | `Garbage -> Log.debug (fun f -> f "dropping undecodable datagram")
        | `Message (m, _) ->
            if Lossy.pass_rx lossy then begin
              if m.Packet.Message.transfer_id = transfer_id then
                handle (Protocol.Action.Message m)
              else extra m
            end
      end
  done

(* After completion, keep answering duplicates for a grace period so a sender
   whose final ack was lost can still finish. *)
let linger ?(lossy = Lossy.perfect) ~socket ~peer ~transfer_id ~(machine : Protocol.Machine.t)
    ~linger_ns () =
  let stop_at = Udp.now_ns () + linger_ns in
  let send m = if Lossy.pass_tx lossy then Udp.send_message socket peer m in
  let rec loop () =
    let remaining = stop_at - Udp.now_ns () in
    if remaining > 0 then begin
      match Udp.recv_message ~timeout_ns:remaining socket with
      | `Timeout -> ()
      | `Garbage -> loop ()
      | `Message (m, _) ->
          if Lossy.pass_rx lossy && m.Packet.Message.transfer_id = transfer_id then
            List.iter
              (function Protocol.Action.Send reply -> send reply | _ -> ())
              (machine.Protocol.Machine.handle (Protocol.Action.Message m));
          loop ()
    end
  in
  loop ()

let send ?(lossy = Lossy.perfect) ?(transfer_id = 1) ?(packet_bytes = 1024)
    ?(retransmit_ns = 50_000_000) ?(max_attempts = 50) ?rtt ?pacing_ns ~socket ~peer ~suite
    ~data () =
  if String.length data = 0 then invalid_arg "Peer.send: empty data";
  let total_bytes = String.length data in
  let total_packets = (total_bytes + packet_bytes - 1) / packet_bytes in
  let config =
    Protocol.Config.make ~transfer_id ~packet_bytes ~retransmit_ns ~max_attempts
      ~total_packets ()
  in
  (* Reliable handshake: repeat REQ until ACK seq=0 comes back. The REQ
     carries the geometry and the protocol suite, so the receiver always
     builds the matching machine. *)
  let req =
    {
      (Packet.Message.req ~transfer_id ~total:total_packets) with
      Packet.Message.payload =
        Suite_codec.encode ~data_crc:(Packet.Checksum.crc32_string data) ~packet_bytes
          ~total_bytes suite;
    }
  in
  let rec handshake attempt =
    if attempt > max_attempts then failwith "Peer.send: handshake failed";
    if Lossy.pass_tx lossy then Udp.send_message socket peer req;
    match Udp.recv_message ~timeout_ns:retransmit_ns socket with
    | `Timeout | `Garbage -> handshake (attempt + 1)
    | `Message (m, _) ->
        if
          Lossy.pass_rx lossy
          && m.Packet.Message.transfer_id = transfer_id
          && m.Packet.Message.kind = Packet.Kind.Ack
          && m.Packet.Message.seq = 0
        then ()
        else handshake (attempt + 1)
  in
  handshake 1;
  let payload seq =
    let offset = seq * packet_bytes in
    String.sub data offset (min packet_bytes (total_bytes - offset))
  in
  let counters = Protocol.Counters.create () in
  let machine = Protocol.Suite.sender suite ~counters config ~payload in
  let started = Udp.now_ns () in
  run_machine ~lossy ?rtt ?pacing_ns ~socket ~peer ~transfer_id ~machine
    ~deliver:(fun _ _ -> ()) ();
  {
    outcome = Option.get (machine.Protocol.Machine.outcome ());
    elapsed_ns = Udp.now_ns () - started;
    counters;
  }

let serve_one ?(lossy = Lossy.perfect) ?(retransmit_ns = 50_000_000) ?(max_attempts = 50)
    ?linger_ns ?suite ~socket () =
  let linger_ns = Option.value linger_ns ~default:(3 * retransmit_ns) in
  (* Wait for a geometry-carrying REQ. *)
  let rec await_req () =
    match Udp.recv_message socket with
    | `Timeout -> await_req () (* unreachable without timeout, defensive *)
    | `Garbage -> await_req ()
    | `Message (m, from) -> begin
        if not (Lossy.pass_rx lossy) then await_req ()
        else
          match
            (m.Packet.Message.kind, Suite_codec.decode m.Packet.Message.payload)
          with
          | Packet.Kind.Req, Some info -> (m.Packet.Message.transfer_id, info, from)
          | _ -> await_req ()
      end
  in
  let transfer_id, info, sender_address = await_req () in
  let packet_bytes = info.Suite_codec.packet_bytes in
  let total_bytes = info.Suite_codec.total_bytes in
  let suite =
    match (info.Suite_codec.suite, suite) with
    | Some carried, _ -> carried (* the wire wins: both ends must match *)
    | None, Some fallback -> fallback
    | None, None -> Protocol.Suite.Blast Protocol.Blast.Go_back_n
  in
  let total_packets = (total_bytes + packet_bytes - 1) / packet_bytes in
  let config =
    Protocol.Config.make ~transfer_id ~packet_bytes ~retransmit_ns ~max_attempts
      ~total_packets ()
  in
  let buffer = Bytes.create total_bytes in
  let deliver seq payload =
    let offset = seq * packet_bytes in
    let expected = min packet_bytes (total_bytes - offset) in
    if String.length payload <> expected then
      failwith
        (Printf.sprintf "Peer.serve_one: packet %d carries %d bytes, expected %d" seq
           (String.length payload) expected);
    Bytes.blit_string payload 0 buffer offset expected
  in
  let counters = Protocol.Counters.create () in
  let machine = Protocol.Suite.receiver suite ~counters config in
  let handshake_ack = Packet.Message.ack ~transfer_id ~seq:0 ~total:total_packets in
  if Lossy.pass_tx lossy then Udp.send_message socket sender_address handshake_ack;
  (* A lost handshake ack shows up as a duplicate REQ mid-transfer. *)
  let extra m =
    if m.Packet.Message.kind = Packet.Kind.Req then
      (if Lossy.pass_tx lossy then Udp.send_message socket sender_address handshake_ack)
  in
  let machine_view =
    (* The machine keys on its own transfer id; duplicate REQs share it, so
       intercept them before the machine sees them. *)
    {
      machine with
      Protocol.Machine.handle =
        (fun event ->
          match event with
          | Protocol.Action.Message m when m.Packet.Message.kind = Packet.Kind.Req ->
              extra m;
              []
          | _ -> machine.Protocol.Machine.handle event);
    }
  in
  run_machine ~lossy ~socket ~peer:sender_address ~transfer_id ~machine:machine_view ~deliver
    ();
  linger ~lossy ~socket ~peer:sender_address ~transfer_id ~machine ~linger_ns ();
  let data = Bytes.to_string buffer in
  let integrity =
    match info.Suite_codec.data_crc with
    | None -> Not_carried
    | Some expected ->
        if Packet.Checksum.crc32_string data = expected then Verified else Mismatch
  in
  { data; transfer_id; receive_counters = counters; integrity }
