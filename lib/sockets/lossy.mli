(** Deterministic loss injection for the UDP transport.

    The loopback interface never loses datagrams, so the error experiments
    inject loss at the endpoints instead: a message can be dropped on the way
    out ([tx_loss]) or on the way in ([rx_loss]), each sampled iid from a
    seeded generator.

    This is a thin compatibility wrapper over {!Faults.Netem} restricted to
    its drop injector — use Netem directly for duplication, reordering,
    corruption, truncation, or delay. *)

type t

val perfect : t

val create : seed:int -> tx_loss:float -> rx_loss:float -> t

val pass_tx : t -> bool
(** [true] when the outgoing datagram should actually be sent. *)

val pass_rx : t -> bool

val dropped : t -> int
(** Total datagrams suppressed so far, both directions. *)
