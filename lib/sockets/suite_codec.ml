let strategy_tag = function
  | Protocol.Blast.Full_retransmit -> 1
  | Protocol.Blast.Full_retransmit_nack -> 2
  | Protocol.Blast.Go_back_n -> 3
  | Protocol.Blast.Selective -> 4

let strategy_of_tag = function
  | 1 -> Some Protocol.Blast.Full_retransmit
  | 2 -> Some Protocol.Blast.Full_retransmit_nack
  | 3 -> Some Protocol.Blast.Go_back_n
  | 4 -> Some Protocol.Blast.Selective
  | _ -> None

type info = {
  packet_bytes : int;
  total_bytes : int;
  suite : Protocol.Suite.t option;
  data_crc : int32 option;
  stripe : Packet.Stripe.t option;
}

(* Layout: u32 packet_bytes | u32 total_bytes | u8 kind | u8 strategy |
   u32 argument (window or chunk size; 0xFFFFFFFF encodes max_int)
   [| u32 data CRC [| 12-byte stripe extension]]. The stripe extension
   requires the CRC form: a striped sub-transfer without an end-to-end
   CRC could never be manifest-verified, so the wire rules it out. *)
let encode ?data_crc ?stripe ~packet_bytes ~total_bytes suite =
  (match (stripe, data_crc) with
  | Some _, None -> invalid_arg "Suite_codec.encode: a stripe requires data_crc"
  | _ -> ());
  let buf =
    Bytes.create
      (match (data_crc, stripe) with
      | Some _, Some _ -> 18 + Packet.Stripe.ext_bytes
      | Some _, None -> 18
      | None, _ -> 14)
  in
  Bytes.set_int32_be buf 0 (Int32.of_int packet_bytes);
  Bytes.set_int32_be buf 4 (Int32.of_int total_bytes);
  let kind, strategy, argument =
    match suite with
    | Protocol.Suite.Stop_and_wait -> (1, 0, 0)
    | Protocol.Suite.Sliding_window { window } ->
        (2, 0, if window = max_int then 0xFFFFFFFF else window)
    | Protocol.Suite.Blast strategy -> (3, strategy_tag strategy, 0)
    | Protocol.Suite.Multi_blast { strategy; chunk_packets } ->
        (4, strategy_tag strategy, chunk_packets)
  in
  Bytes.set_uint8 buf 8 kind;
  Bytes.set_uint8 buf 9 strategy;
  Bytes.set_int32_be buf 10 (Int32.of_int argument);
  (match data_crc with Some crc -> Bytes.set_int32_be buf 14 crc | None -> ());
  (match stripe with
  | Some s ->
      Bytes.blit_string (Packet.Stripe.encode_ext s) 0 buf 18 Packet.Stripe.ext_bytes
  | None -> ());
  Bytes.to_string buf

let decode payload =
  let len = String.length payload in
  let striped = 18 + Packet.Stripe.ext_bytes in
  if len <> 8 && len <> 14 && len <> 18 && len <> striped then None
  else begin
    let buf = Bytes.of_string payload in
    let u32 pos = Int32.to_int (Bytes.get_int32_be buf pos) land 0xFFFFFFFF in
    let packet_bytes = u32 0 and total_bytes = u32 4 in
    if packet_bytes <= 0 || total_bytes <= 0 then None
    else if len = 8 then
      Some { packet_bytes; total_bytes; suite = None; data_crc = None; stripe = None }
    else begin
      let argument = u32 10 in
      let suite =
        match (Bytes.get_uint8 buf 8, strategy_of_tag (Bytes.get_uint8 buf 9)) with
        | 1, _ -> Some Protocol.Suite.Stop_and_wait
        | 2, _ ->
            Some
              (Protocol.Suite.Sliding_window
                 { window = (if argument = 0xFFFFFFFF then max_int else argument) })
        | 3, Some strategy -> Some (Protocol.Suite.Blast strategy)
        | 4, Some strategy when argument > 0 ->
            Some (Protocol.Suite.Multi_blast { strategy; chunk_packets = argument })
        | _ -> None
      in
      let data_crc = if len >= 18 then Some (Bytes.get_int32_be buf 14) else None in
      let stripe =
        if len = striped then
          Packet.Stripe.decode_ext (String.sub payload 18 Packet.Stripe.ext_bytes)
        else None
      in
      (* A striped-length payload whose extension does not parse is
         malformed, not merely unstriped: reject it whole. *)
      if len = striped && stripe = None then None
      else
        match suite with
        | Some suite ->
            Some { packet_bytes; total_bytes; suite = Some suite; data_crc; stripe }
        | None -> None
    end
  end
