/* Edge-triggered readiness: epoll_create1(2) / epoll_ctl(2) / epoll_wait(2),
   plus an eventfd(2) wakeup channel.

   The engine loop used to sleep in Unix.select with a hard 50 ms cap — the
   modern analogue of the paper's fixed-tick receiver. These stubs let the
   loop block exactly until the next datagram, the next timer deadline, or
   an explicit cross-thread wake, whichever comes first.

   Portability contract (the OCaml side, Poller, enforces the fallback):
   - compile-time: Linux-only, gated on __linux__; other platforms get
     stubs that report "unsupported";
   - run-time: a Linux build on a kernel without the syscalls gets ENOSYS,
     surfaced as the same "unsupported" code (-2), never an exception.

   Unlike the mmsg stubs, epoll_wait with a nonzero timeout BLOCKS, so the
   wait stub must release the OCaml runtime lock around the syscall. That in
   turn means no OCaml heap pointer may be live across it: every argument is
   unboxed to a C scalar before the lock is released.

   Return conventions (negative codes, never an exception):
     epoll_create:  fd >= 0, -1 error, -2 unsupported
     epoll_add/del: 0 ok, -1 error, -2 unsupported
     epoll_wait:    bitmask of ready tags (bit k set = a registration made
                    with tag k fired), 0 timeout, -1 interrupted (EINTR),
                    -2 unsupported, -3 genuine error
     eventfd:       fd >= 0, -1 unsupported or error (caller falls back to
                    a self-pipe)

   Registrations are EPOLLIN | EPOLLET with the caller's small integer tag
   as user data; the OCaml side uses tag 0 for data sockets and tag 1 for
   the wakeup fd, so one word carries the whole wait verdict. */

#define _GNU_SOURCE

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/threads.h>

#include <errno.h>

#ifdef __linux__
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>
#endif

/* More slots than distinct tags; one wait call drains every ready
   registration into the bitmask. */
#define LANREPRO_EPOLL_EVENTS 8

CAMLprim value lanrepro_epoll_supported(value unit)
{
#ifdef __linux__
  (void)unit;
  return Val_true;
#else
  (void)unit;
  return Val_false;
#endif
}

CAMLprim value lanrepro_epoll_create(value unit)
{
#ifdef __linux__
  int fd;
  (void)unit;
  fd = epoll_create1(EPOLL_CLOEXEC);
  if (fd >= 0) return Val_int(fd);
  return Val_int(errno == ENOSYS ? -2 : -1);
#else
  (void)unit;
  return Val_int(-2);
#endif
}

/* (epfd, fd, tag) -> 0 / -1 / -2. Registers EPOLLIN | EPOLLET. */
CAMLprim value lanrepro_epoll_add(value vepfd, value vfd, value vtag)
{
#ifdef __linux__
  struct epoll_event ev;
  ev.events = EPOLLIN | EPOLLET;
  ev.data.u64 = (uint64_t)Long_val(vtag);
  if (epoll_ctl(Int_val(vepfd), EPOLL_CTL_ADD, Int_val(vfd), &ev) == 0)
    return Val_int(0);
  return Val_int(errno == ENOSYS ? -2 : -1);
#else
  (void)vepfd; (void)vfd; (void)vtag;
  return Val_int(-2);
#endif
}

CAMLprim value lanrepro_epoll_del(value vepfd, value vfd)
{
#ifdef __linux__
  struct epoll_event ev = {0};
  if (epoll_ctl(Int_val(vepfd), EPOLL_CTL_DEL, Int_val(vfd), &ev) == 0)
    return Val_int(0);
  return Val_int(errno == ENOSYS ? -2 : -1);
#else
  (void)vepfd; (void)vfd;
  return Val_int(-2);
#endif
}

/* (epfd, timeout_ms) -> ready-tag bitmask / 0 / -1 / -2 / -3.
   timeout_ms = -1 blocks until an event or a wake. */
CAMLprim value lanrepro_epoll_wait(value vepfd, value vtimeout_ms)
{
#ifdef __linux__
  struct epoll_event events[LANREPRO_EPOLL_EVENTS];
  int epfd = Int_val(vepfd);
  int timeout_ms = Int_val(vtimeout_ms);
  int n, i, mask;

  caml_release_runtime_system();
  n = epoll_wait(epfd, events, LANREPRO_EPOLL_EVENTS, timeout_ms);
  caml_acquire_runtime_system();

  if (n < 0) {
    if (errno == EINTR) return Val_int(-1);
    if (errno == ENOSYS) return Val_int(-2);
    return Val_int(-3);
  }
  mask = 0;
  for (i = 0; i < n; i++) {
    uint64_t tag = events[i].data.u64;
    if (tag < 30) mask |= 1 << (int)tag;
  }
  return Val_int(mask);
#else
  (void)vepfd; (void)vtimeout_ms;
  return Val_int(-2);
#endif
}

/* Nonblocking eventfd for the wakeup channel; the same fd is both the read
   and the write end. -1 = unsupported or error; caller uses a self-pipe. */
CAMLprim value lanrepro_eventfd(value unit)
{
#ifdef __linux__
  int fd;
  (void)unit;
  fd = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  return Val_int(fd >= 0 ? fd : -1);
#else
  (void)unit;
  return Val_int(-1);
#endif
}
