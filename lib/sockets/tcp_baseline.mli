(** A kernel-TCP baseline for the UDP blast path.

    The paper's related work observes that most transport analyses optimize
    throughput under load rather than delay under low load; forty years
    later, TCP is the throughput-oriented incumbent. This tiny
    length-prefixed transfer over a TCP stream gives the benchmarks a modern
    comparator on the same loopback path as the UDP peers. The sender's
    elapsed time includes a one-byte application acknowledgement, matching
    the blast protocols' completion semantics. *)

val listen : ?address:string -> unit -> Unix.file_descr * Unix.sockaddr
(** A listening socket on an ephemeral port. *)

val serve_one : socket:Unix.file_descr -> unit -> string
(** Accepts one connection and returns the transferred data. *)

val send : ?clock:(unit -> int) -> peer:Unix.sockaddr -> data:string -> unit -> int
(** Connects, transfers, waits for the application ack; returns the elapsed
    nanoseconds. [clock] (default the monotonic {!Udp.now_ns}) is the same
    injectable timestamp source as [Io_ctx.clock], so benchmark timing comes
    from one place. *)
