(** Sans-IO receiver flow engine.

    The receiver half of a transfer — handshake re-ack, datagram dispatch
    into the protocol machine, idle watchdog, post-completion linger, and the
    whole-segment CRC verdict — as a pure state machine over explicit
    timestamps. The engine never touches a socket, a clock, or a thread: the
    driver feeds it decoded datagrams ([on_message]), undecodable ones
    ([on_garbage]), and time ([on_tick]), and executes the [Transmit] actions
    it returns. The same engine therefore runs single-flow under
    {!Peer.serve_one} and multiplexed — hundreds of instances over one
    socket — under the concurrent server, with identical protocol behaviour.

    Timestamps are plain integer nanoseconds from any monotonic source; only
    differences are meaningful. The flow tells the driver when it next needs
    a tick via [next_deadline]; drivers sleep until the earliest deadline
    across their flows.

    {b No-hang guarantee.} Every flow reaches [`Done]: the idle watchdog
    aborts a flow whose sender goes silent, the linger window is bounded,
    and [force_done] settles a flow unconditionally at driver shutdown. *)

type action =
  | Transmit of Packet.Message.t
      (** datagram to send to the flow's peer; the driver owns loss/fault
          injection and the [Probe.tx] event *)

type integrity = Verified | Mismatch | Not_carried

type completion = {
  data : string;  (** the reassembled transfer; [""] unless [Success] *)
  transfer_id : int;
  counters : Protocol.Counters.t;
  integrity : integrity;
      (** whole-segment CRC verdict — [Verified]/[Mismatch] when the sender
          carried a CRC in its REQ, [Not_carried] otherwise *)
  outcome : Protocol.Action.outcome;
}

type status = [ `Running | `Lingering | `Done of completion ]

type t

val create :
  ?fallback_suite:Protocol.Suite.t ->
  ?tuning:Protocol.Tuning.t ->
  ?budget:(unit -> int) ->
  ?idle_timeout_ns:int ->
  ?linger_ns:int ->
  ?max_transfer_bytes:int ->
  probe:Obs.Probe.t ->
  counters:Protocol.Counters.t ->
  now:int ->
  Packet.Message.t ->
  (t * action list, [ `Not_a_req | `Bad_geometry ]) result
(** Builds a flow from a geometry-carrying REQ. The returned actions open
    with the handshake ack. [`Not_a_req] when the message is not a REQ;
    [`Bad_geometry] when its payload does not decode, describes a
    non-positive size, or claims more than [max_transfer_bytes] (default
    256 MiB — a server must not let one unauthenticated datagram size an
    arbitrary allocation).

    [tuning] (default {!Protocol.Tuning.wire_default}) supplies the timers:
    idle watchdog defaults to [max_attempts * retransmit_ns], linger to
    [3 * retransmit_ns]. A budget-stamped (wire v2) REQ makes the flow
    adaptive regardless of the tuning's regime — its ACK/NACKs carry the
    receiver-advertised budget, sampled from [budget] at every solicit (the
    multiplexed server passes a closure over engine health; the default
    advertises the tuning's [max_train]). A plain v1 REQ pins the flow to
    fixed trains even under adaptive tuning: the sender cannot parse budgets
    it never asked for.

    The probe's [rx] fires for the REQ here; the suite normally travels in
    the REQ and [fallback_suite] only covers senders that omit it. *)

val transfer_id : t -> int
val counters : t -> Protocol.Counters.t
val probe : t -> Obs.Probe.t
val status : t -> status

val completed : t -> completion option
(** The completion as soon as the machine has settled it, including during
    the linger grace period — when a flow is [`Lingering] its bytes are
    final even though {!status} has not reached [`Done]. [None] while
    still running. Lets a manifest query count a stripe the moment its
    last packet lands rather than a linger later. *)

val total_bytes : t -> int
(** Transfer size the handshake REQ declared. *)

val stripe : t -> Packet.Stripe.t option
(** Ring framing the handshake REQ carried: which slice of which object
    this flow is, [None] for an ordinary (unstriped) transfer. *)

val total_packets : t -> int
(** Expected distinct data packets ([ceil (total_bytes / packet_bytes)]) —
    with [counters.delivered] this gives a live progress fraction for the
    server's stats plane. *)

val on_message : t -> now:int -> Packet.Message.t -> action list
(** Feed one decoded datagram (driver has already applied its loss coin and
    routed by transfer id; mismatched ids are ignored). Resets the idle
    watchdog. A duplicate REQ is answered with the handshake ack; anything
    else goes to the machine. While lingering, duplicates are re-answered
    without extending the linger window. *)

val same_request : t -> Packet.Message.t -> bool
(** Is this REQ a retransmission of the handshake this flow answered — same
    geometry, same whole-segment CRC? [false] means the sender's address and
    transfer id have been reused by a different transfer (a restarted
    process landing on the same ephemeral port): the multiplexed server must
    settle this flow and admit the REQ fresh rather than feed it into a
    machine mid-way through someone else's transfer. *)

val on_garbage : t -> now:int -> Packet.Codec.error -> unit
(** An undecodable datagram attributed to this flow: counted (corruption
    vs. alien traffic, per the codec reason) and, while running, the idle
    watchdog resets — garbage is still evidence the peer is alive. *)

val on_tick : t -> now:int -> action list
(** Fires whatever is due at [now]: the machine's retransmission timer, the
    idle watchdog (aborts with [Peer_unreachable]), or linger expiry
    (settles to [`Done]). Safe to call early; nothing due is a no-op. *)

val next_deadline : t -> int option
(** Earliest instant at which [on_tick] will have work; [None] once done.
    A running flow always has a deadline (the watchdog), so a driver can
    never sleep forever on a live flow. *)

val force_done : t -> now:int -> completion
(** Settles the flow immediately: a lingering flow closes with its result, a
    running one aborts with [Peer_unreachable]. For driver shutdown. *)

val count_garbage :
  probe:Obs.Probe.t -> Protocol.Counters.t -> Packet.Codec.error -> unit
(** Account one undecodable datagram outside any flow (pre-handshake
    traffic): checksum failures count as corruption, the rest as garbage —
    the same split the flows use. *)
