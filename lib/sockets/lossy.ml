(* Compatibility wrapper: iid endpoint loss, now implemented as two
   drop-only Netem instances (one per direction). Kept because a plain
   keep/drop coin is all the simpler call sites (CLI --inject-loss, the
   archive tests) need; anything richer should use Faults.Netem directly. *)

type t = { tx : Faults.Netem.t option; rx : Faults.Netem.t option }

let perfect = { tx = None; rx = None }

let direction ~seed loss =
  if loss = 0.0 then None
  else
    Some
      (Faults.Netem.create ~seed
         (Faults.Scenario.make ~name:"lossy" [ Faults.Scenario.Drop_iid loss ]))

let create ~seed ~tx_loss ~rx_loss =
  if not (tx_loss >= 0.0 && tx_loss <= 1.0 && rx_loss >= 0.0 && rx_loss <= 1.0) then
    invalid_arg "Lossy.create: loss outside [0,1]";
  { tx = direction ~seed tx_loss; rx = direction ~seed:(seed + 1) rx_loss }

let pass side = match side with None -> true | Some netem -> not (Faults.Netem.drops netem)
let pass_tx t = pass t.tx
let pass_rx t = pass t.rx

let dropped_side = function
  | None -> 0
  | Some netem -> (Faults.Netem.stats netem).Faults.Netem.dropped

let dropped t = dropped_side t.tx + dropped_side t.rx
