type t = {
  rng : Stats.Rng.t option;
  tx_loss : float;
  rx_loss : float;
  mutable dropped : int;
}

let perfect = { rng = None; tx_loss = 0.0; rx_loss = 0.0; dropped = 0 }

let create ~seed ~tx_loss ~rx_loss =
  if not (tx_loss >= 0.0 && tx_loss <= 1.0 && rx_loss >= 0.0 && rx_loss <= 1.0) then
    invalid_arg "Lossy.create: loss outside [0,1]";
  { rng = Some (Stats.Rng.create ~seed); tx_loss; rx_loss; dropped = 0 }

let sample t loss =
  match t.rng with
  | None -> true
  | Some rng ->
      if loss > 0.0 && Stats.Rng.bernoulli rng ~p:loss then begin
        t.dropped <- t.dropped + 1;
        false
      end
      else true

let pass_tx t = sample t t.tx_loss
let pass_rx t = sample t t.rx_loss
let dropped t = t.dropped
