(* A modern-comparator baseline: the same bulk transfer over the operating
   system's TCP. Length-prefixed framing (8-byte big-endian length, then the
   data). See tcp_baseline.mli. *)

let listen ?(address = "127.0.0.1") () =
  let socket = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt socket Unix.SO_REUSEADDR true;
  Unix.bind socket (Unix.ADDR_INET (Unix.inet_addr_of_string address, 0));
  Unix.listen socket 1;
  (socket, Unix.getsockname socket)

let really_write fd buf pos len =
  let written = ref 0 in
  while !written < len do
    written := !written + Unix.write fd buf (pos + !written) (len - !written)
  done

let really_read fd buf pos len =
  let consumed = ref 0 in
  while !consumed < len do
    let n = Unix.read fd buf (pos + !consumed) (len - !consumed) in
    if n = 0 then failwith "Tcp_baseline: connection closed early";
    consumed := !consumed + n
  done

let serve_one ~socket () =
  let connection, _ = Unix.accept socket in
  Fun.protect
    ~finally:(fun () -> try Unix.close connection with Unix.Unix_error _ -> ())
    (fun () ->
      let header = Bytes.create 8 in
      really_read connection header 0 8;
      let length = Int64.to_int (Bytes.get_int64_be header 0) in
      if length < 0 || length > 1 lsl 30 then failwith "Tcp_baseline: bad length";
      let data = Bytes.create length in
      really_read connection data 0 length;
      (* One-byte acknowledgement so the sender's elapsed time covers full
         delivery, matching the blast protocols' semantics. *)
      really_write connection (Bytes.make 1 '\001') 0 1;
      Bytes.to_string data)

let send ?(clock = Udp.now_ns) ~peer ~data () =
  let socket = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close socket with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect socket peer;
      let started = clock () in
      let header = Bytes.create 8 in
      Bytes.set_int64_be header 0 (Int64.of_int (String.length data));
      really_write socket header 0 8;
      really_write socket (Bytes.of_string data) 0 (String.length data);
      let ack = Bytes.create 1 in
      really_read socket ack 0 1;
      clock () - started)
