(** Kernel-batched datagram I/O: packet trains through [sendmmsg(2)] /
    [recvmmsg(2)].

    The paper's central measurement is that per-packet processor overhead —
    not wire time — dominates LAN bulk transfer; blast wins because it
    amortizes that overhead over a whole train. The modern analogue of the
    per-packet "copy into the interface" cost is the syscall: one
    [Unix.sendto]/[Unix.recvfrom] per datagram. A {!t} collects an outgoing
    train into a reusable vector and submits it in one kernel crossing; an
    {!rx} drains a socket the same way.

    {b Portability.} The syscalls are Linux-only. On other platforms, on a
    kernel that returns [ENOSYS], or when forced (the [LANREPRO_BATCH] knob
    or [force_fallback]), every operation silently degrades to the exact
    one-datagram path ({!Udp.send_bytes} / [Unix.recvfrom]) — same
    semantics, one syscall per datagram.

    {b Per-datagram outcomes.} A short [sendmmsg] return (kernel accepted
    only a prefix of the train) never raises: the entry at the boundary is
    resolved through {!Udp.send_bytes}, which classifies it as [Sent] or the
    loss-equivalent [Send_failed], and the rest of the train is resubmitted.
    Each entry's [on_outcome] callback fires exactly once, so counters and
    probes account batched sends exactly as they account unbatched ones.

    Fault injection composes upstream: run {!Faults.Netem.tx_bytes} on each
    datagram and push the resulting emissions — a dropped datagram is simply
    never pushed, so injection statistics are identical batched or not. *)

val kernel_support : unit -> bool
(** [true] when the stubs were compiled with the syscalls {e and} no runtime
    [ENOSYS] has been observed yet. Purely informative — the fallback is
    automatic either way. *)

val env_enabled : unit -> bool
(** The [LANREPRO_BATCH] knob, re-read at each call so tests can toggle it:
    ["0"], ["off"] or ["false"] disable batching (callers should not build a
    batch at all); anything else — including unset — enables it. *)

val env_force_fallback : unit -> bool
(** [true] when [LANREPRO_BATCH] is ["fallback"] or ["emulate"]: the batch
    API stays in use but every submission takes the one-datagram path, as if
    the kernel had returned [ENOSYS] — how CI exercises the fallback on a
    kernel that does support the syscalls. *)

type report = {
  submitted : int;  (** entries handed to the kernel (or the fallback) *)
  sent : int;
  failed : int;  (** loss-equivalent per-datagram failures, never raised *)
  syscalls : int;  (** kernel crossings it took *)
}

val zero : report
val add_report : report -> report -> report
val pp_report : Format.formatter -> report -> unit

(** {1 Transmit trains} *)

type t

val create : ?capacity:int -> ?force_fallback:bool -> socket:Unix.file_descr -> unit -> t
(** A reusable train bound to [socket] (which the caller keeps ownership
    of). [capacity] (default 128, clamped to the stub maximum of 256) bounds
    one submission; {!push} past it flushes automatically. [force_fallback]
    defaults to {!env_force_fallback}. *)

val capacity : t -> int
val length : t -> int
(** Entries currently queued (not yet flushed). *)

val using_fallback : t -> bool
(** [true] when submissions take the one-datagram path — forced, non-Linux,
    or after a runtime [ENOSYS]. *)

val push :
  t -> peer:Unix.sockaddr -> ?on_outcome:(Udp.send_outcome -> unit) -> bytes -> unit
(** Queue one datagram for [peer]. The bytes are used in place — the caller
    must not mutate them before the next {!flush}. [on_outcome] fires
    exactly once, at flush time, with the datagram's individual outcome.
    A full train flushes itself; a non-IPv4 [peer] is sent immediately
    through the one-datagram path. *)

val push_message :
  t -> peer:Unix.sockaddr -> ?on_outcome:(Udp.send_outcome -> unit) -> Packet.Message.t -> unit
(** {!push} of the encoded message. *)

val flush : t -> report
(** Submit everything queued — one [sendmmsg] per [capacity]-sized window on
    the fast path — and empty the train. Returns the accounting for this
    flush only; {!totals} accumulates across flushes. Never raises for
    transient per-datagram conditions (they are [failed], i.e. loss);
    genuine programming errors ([EBADF], ...) still raise, exactly as
    {!Udp.send_bytes} would. *)

val totals : t -> report
(** Cumulative accounting since {!create} — the bench derives
    syscalls-per-datagram from this. *)

(** {1 Receive drains} *)

type rx

val create_rx : ?capacity:int -> ?force_fallback:bool -> socket:Unix.file_descr -> unit -> rx
(** A drain ring of [capacity] (default 32, clamped to 256) buffers of
    {!Udp.max_datagram_bytes} each, bound to [socket]. The socket should be
    non-blocking (the fast path passes [MSG_DONTWAIT] regardless; the
    fallback relies on the flag). *)

val rx_capacity : rx -> int

val recv : rx -> limit:int -> int
(** Drain up to [min limit capacity] datagrams in one [recvmmsg] (or up to
    that many [Unix.recvfrom] calls on the fallback). Returns how many
    arrived — [0] when nothing is ready — and never blocks. Pending ICMP
    errors ([ECONNREFUSED] from a peer that closed) are consumed and the
    drain retried, mirroring the unbatched loop. *)

val get : rx -> int -> bytes * int * Unix.sockaddr
(** [get rx i] is slot [i] of the last {!recv}: the buffer (valid until the
    next {!recv}), the datagram length, and the sender. *)

val rx_syscalls : rx -> int
(** Cumulative kernel crossings since {!create_rx}. *)

val rx_received : rx -> int
(** Cumulative datagrams drained since {!create_rx}. *)
