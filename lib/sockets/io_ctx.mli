(** Transport I/O context: one value for everything an endpoint loop used to
    take as parallel optional arguments.

    Every transport entry point ({!Peer.send}, {!Peer.serve_one},
    [Server.Engine.create], [Server.Swarm.run], {!Chaos.run_one}, ...) used
    to grow its own [?faults]/[?recorder]/[?metrics] triple; they now take a
    single [?ctx]. The record is deliberately open — build one with {!make},
    derive variants with functional update ([{ ctx with faults = ... }]),
    which is how the chaos harness and the swarm hand each endpoint its own
    fault pipeline while sharing the telemetry sinks. *)

type t = {
  faults : Faults.Netem.t option;
      (** adversarial fault pipeline for this endpoint's outgoing datagrams *)
  recorder : Obs.Recorder.t option;  (** flight recorder for datagram events *)
  metrics : Obs.Metrics.t option;  (** metrics registry for counters/gauges *)
  clock : unit -> int;
      (** monotonic nanoseconds; every deadline, RTT sample and journal
          timestamp in the loop comes from here (default {!Udp.now_ns}) *)
  batch : bool;
      (** submit packet trains through {!Batch} ([sendmmsg]/[recvmmsg])
          instead of one syscall per datagram *)
  tuning : Protocol.Tuning.t;
      (** timers, attempts, train adaptation and pacing for every transfer
          this endpoint runs — the layered replacement for the old
          [?retransmit_ns]/[?max_attempts]/[?pacing_ns] argument sprawl *)
}

val make :
  ?faults:Faults.Netem.t ->
  ?recorder:Obs.Recorder.t ->
  ?metrics:Obs.Metrics.t ->
  ?clock:(unit -> int) ->
  ?batch:bool ->
  ?tuning:Protocol.Tuning.t ->
  unit ->
  t
(** [batch] defaults to {!Batch.env_enabled} — i.e. on, unless
    [LANREPRO_BATCH] says otherwise — so the CLI knob reaches every loop
    that defaults its context. [tuning] defaults to
    {!Protocol.Tuning.wire_default} (fixed trains, 50 ms timer). *)

val default : unit -> t
(** [make ()], evaluated at call time so the [LANREPRO_BATCH] knob is read
    when the loop starts, not at module initialization. *)
