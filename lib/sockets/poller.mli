(** Edge-triggered readiness with an explicit cross-thread wakeup.

    The engine's serving loop used to sleep in [Unix.select] with a hard
    50 ms cap — twenty wakeups a second whether or not anything happened.
    A poller lets the loop block exactly until the next datagram, the next
    timer deadline, or an explicit {!wake}, whichever comes first.

    The fast path is Linux [epoll] ([epoll_create1]/[epoll_ctl]/
    [epoll_wait], registrations [EPOLLIN | EPOLLET]) with an [eventfd]
    wakeup channel. Like {!Batch} does for [sendmmsg], the fallback is
    latched at runtime: a non-Linux build, a kernel that returns [ENOSYS],
    or [LANREPRO_EPOLL=0] in the environment all land on a portable
    [Unix.select] + self-pipe backend with identical semantics.

    Edge-triggered safety is the caller's contract: after {!wait} returns
    [`Ready], the caller must drain the registered fds to [EAGAIN] before
    waiting again, or a level that never re-edges is lost. The transport's
    poll-first [recv] upholds exactly this.

    {!wake} is safe from any thread and coalesces: many wakes before the
    next wait cost one [`Woken] return. Spurious [`Woken]/[`Ready] returns
    are allowed; callers re-check their own state. *)

type t

val create : unit -> t
(** A fresh poller with its wakeup channel armed. Falls back to the select
    backend (and, on [ENOSYS], latches the fallback process-wide) rather
    than raising. *)

val kernel_support : unit -> bool
(** [true] when the epoll stubs are compiled in and no runtime [ENOSYS]
    has been latched; the environment switch is separate. *)

val backend : t -> [ `Epoll | `Select ]
(** Which backend this poller landed on — observability, not behavior. *)

val add : t -> Unix.file_descr -> unit
(** Register a data fd for read readiness (edge-triggered under epoll).
    Idempotent per fd. *)

val remove : t -> Unix.file_descr -> unit
(** Unregister; required before closing a registered fd. *)

val wait : t -> timeout_ns:int option -> [ `Ready | `Timeout | `Woken ]
(** Block until a registered fd edges readable ([`Ready]), the timeout
    elapses ([`Timeout]; [None] waits forever), or {!wake} fires
    ([`Woken], wakeup channel drained). [EINTR] and other spurious returns
    surface as [`Ready] — the caller polls, finds nothing, and re-waits
    against its own deadline. *)

val wake : t -> unit
(** Make the current (or next) {!wait} return [`Woken] promptly. Safe from
    any thread and from signal-adjacent contexts; never blocks. *)

val close : t -> unit
(** Release the poller's fds (not the registered data fds). Further
    {!wait}/{!add} calls are errors; a racing {!wake} is a no-op. *)
