(* Chaos soak harness: one suite x one scenario over real UDP loopback, both
   endpoints behind an adversarial Netem, everything watchdog-bounded. The
   core robustness invariant checked here is the PR's contract: every
   transfer either completes with CRC-verified data, or fails cleanly with a
   bounded attempt count — never a hang, never corrupt delivery. *)

type run = {
  suite : Protocol.Suite.t;
  scenario : Faults.Scenario.t;
  seed : int;
  bytes : int;
  send : Peer.send_result option;  (** [None]: the sender raised *)
  received : Peer.receive_result option;  (** [None]: the receiver raised *)
  sender_faults : Faults.Netem.stats;
  receiver_faults : Faults.Netem.stats;
  violation : string option;  (** invariant breach, [None] when the run is clean *)
}

let ok run = run.violation = None

let random_data rng n = String.init n (fun _ -> Char.chr (Stats.Rng.int rng 256))

let check_invariant ~data ~max_attempts ~total_packets send received =
  let fail fmt = Printf.ksprintf (fun s -> Some s) fmt in
  match (send, received) with
  | None, _ -> fail "sender raised"
  | _, None -> fail "receiver raised"
  | Some (s : Peer.send_result), Some (r : Peer.receive_result) -> (
      let attempt_bound = max_attempts * total_packets in
      if s.Peer.counters.Protocol.Counters.rounds > attempt_bound then
        fail "sender exceeded the attempt bound (%d rounds > %d)"
          s.Peer.counters.Protocol.Counters.rounds attempt_bound
      else if r.Peer.integrity = Peer.Mismatch then
        fail "corrupt delivery: receiver completed with a CRC mismatch"
      else
        match s.Peer.outcome with
        | Protocol.Action.Success ->
            if r.Peer.receive_outcome <> Protocol.Action.Success then
              fail "sender succeeded but receiver reported %s"
                (Format.asprintf "%a" Protocol.Action.pp_outcome r.Peer.receive_outcome)
            else if r.Peer.integrity <> Peer.Verified then
              fail "sender succeeded without a verified CRC at the receiver"
            else if not (String.equal r.Peer.data data) then
              fail "sender succeeded but the delivered bytes differ"
            else None
        | Protocol.Action.Too_many_attempts | Protocol.Action.Peer_unreachable
        | Protocol.Action.Rejected ->
            (* A clean, bounded failure: acceptable under an adversarial
               network, as long as the receiver also came back (checked by
               construction: both threads returned). *)
            None)

(* The soak's fast-loopback timers: short enough that a campaign cell with
   an adversarial pipeline still finishes in tens of milliseconds. *)
let default_tuning = Protocol.Tuning.fixed ~retransmit_ns:8_000_000 ~max_attempts:30 ()

let run_one ?(packet_bytes = 512) ?tuning ?(bytes = 6_000) ?ctx ~seed ~suite ~scenario ()
    =
  let ctx = match ctx with Some c -> c | None -> Io_ctx.default () in
  let tuning = match tuning with Some t -> t | None -> default_tuning in
  let retransmit_ns = Protocol.Tuning.retransmit_ns tuning in
  let max_attempts = Protocol.Tuning.max_attempts tuning in
  let data = random_data (Stats.Rng.create ~seed:(seed * 11 + 5)) bytes in
  let sender_netem = Faults.Netem.create ~seed:((seed * 2) + 1) scenario in
  let receiver_netem = Faults.Netem.create ~seed:((seed * 2) + 2) scenario in
  (* Each endpoint gets the shared telemetry context with its own netem in
     the faults slot; a caller-supplied ctx.faults is superseded — the whole
     point of a chaos run is its seeded per-endpoint pipelines. *)
  let sender_ctx = { ctx with Io_ctx.faults = Some sender_netem; tuning } in
  let receiver_ctx = { ctx with Io_ctx.faults = Some receiver_netem; tuning } in
  let receiver_socket, receiver_address = Udp.create_socket () in
  let sender_socket, _ = Udp.create_socket () in
  let idle_timeout_ns = max_attempts * retransmit_ns in
  (* The receiver must outlast the slowest possible handshake, then its own
     idle watchdog takes over. *)
  let accept_timeout_ns = (2 * max_attempts * retransmit_ns) + 500_000_000 in
  let received = ref None in
  let receiver_thread =
    Thread.create
      (fun () ->
        try
          received :=
            Some
              (Peer.serve_one ~ctx:receiver_ctx ~idle_timeout_ns ~accept_timeout_ns
                 ~socket:receiver_socket ())
        with _ -> ())
      ()
  in
  let send =
    try
      Some
        (Peer.send ~ctx:sender_ctx ~packet_bytes ~idle_timeout_ns ~socket:sender_socket
           ~peer:receiver_address ~suite ~data ())
    with _ -> None
  in
  Thread.join receiver_thread;
  Udp.close receiver_socket;
  Udp.close sender_socket;
  let total_packets = (bytes + packet_bytes - 1) / packet_bytes in
  let violation = check_invariant ~data ~max_attempts ~total_packets send !received in
  (* An invariant breach is exactly what the flight recorder exists for. *)
  (match (violation, ctx.Io_ctx.recorder) with
  | Some reason, Some r ->
      ignore (Obs.Recorder.postmortem r ~reason:("chaos: " ^ reason) : string option)
  | _ -> ());
  {
    suite;
    scenario;
    seed;
    bytes;
    send;
    received = !received;
    sender_faults = Faults.Netem.stats sender_netem;
    receiver_faults = Faults.Netem.stats receiver_netem;
    violation;
  }

let all_suites =
  [
    Protocol.Suite.Stop_and_wait;
    Protocol.Suite.Sliding_window { window = max_int };
    Protocol.Suite.Blast Protocol.Blast.Full_retransmit;
    Protocol.Suite.Blast Protocol.Blast.Full_retransmit_nack;
    Protocol.Suite.Blast Protocol.Blast.Go_back_n;
    Protocol.Suite.Blast Protocol.Blast.Selective;
    Protocol.Suite.Multi_blast { strategy = Protocol.Blast.Go_back_n; chunk_packets = 4 };
  ]

let run_campaign ?packet_bytes ?tuning ?bytes ?ctx ?(suites = all_suites)
    ?(scenarios = Faults.Scenario.all) ?(iters = 1) ?(seed = 1) ?(progress = fun _ -> ())
    ?pool ?jobs () =
  (* Flatten the suite x scenario x iter nest into an explicit cell list so
     the cells can run on a domain pool. Each cell's seed is a function of
     its position only, so the runs are the same whatever the parallelism;
     only wall-clock interleaving (and hence [progress] order) changes. *)
  let cells =
    List.concat_map
      (fun suite ->
        List.concat_map
          (fun scenario -> List.init iters (fun iter -> (suite, scenario, iter)))
          scenarios)
      suites
  in
  let cells =
    List.mapi
      (fun i (suite, scenario, iter) ->
        (* [i + 1] preserves the 1-based running index of the old serial
           nest, keeping historical seeds reproducible. *)
        let seed = (seed * 1_000_003) + ((i + 1) * 97) + iter in
        (suite, scenario, seed))
      cells
  in
  let progress_lock = Mutex.create () in
  Exec.Pool.map ?pool ?jobs cells ~f:(fun (suite, scenario, seed) ->
      let run =
        run_one ?packet_bytes ?tuning ?bytes ?ctx ~seed ~suite ~scenario ()
      in
      Mutex.lock progress_lock;
      Fun.protect ~finally:(fun () -> Mutex.unlock progress_lock) (fun () -> progress run);
      run)

let violations runs = List.filter (fun r -> not (ok r)) runs

let completed runs =
  List.length
    (List.filter
       (fun r ->
         match r.send with
         | Some s -> s.Peer.outcome = Protocol.Action.Success
         | None -> false)
       runs)

let outcome_name run =
  match run.send with
  | None -> "exception"
  | Some s -> Format.asprintf "%a" Protocol.Action.pp_outcome s.Peer.outcome
