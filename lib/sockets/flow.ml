let log = Logs.Src.create "sockets.flow" ~doc:"sans-IO receiver flow engine"

module Log = (val Logs.src_log log : Logs.LOG)

type action = Transmit of Packet.Message.t

type integrity = Verified | Mismatch | Not_carried

type completion = {
  data : string;
  transfer_id : int;
  counters : Protocol.Counters.t;
  integrity : integrity;
  outcome : Protocol.Action.outcome;
}

type state =
  | Running
  | Lingering of completion  (** transfer done; re-acking duplicates until the deadline *)
  | Closed of completion

type status = [ `Running | `Lingering | `Done of completion ]

type t = {
  transfer_id : int;
  machine : Protocol.Machine.t;
  counters : Protocol.Counters.t;
  probe : Obs.Probe.t;
  handshake_ack : Packet.Message.t;
  buffer : Bytes.t;
  packet_bytes : int;
  total_bytes : int;
  data_crc : int32 option;
  stripe : Packet.Stripe.t option;  (** ring framing carried by the REQ *)
  idle_timeout_ns : int;
  linger_ns : int;
  mutable machine_deadline : int option;  (** armed by the machine's [Arm_timer] *)
  mutable idle_deadline : int;  (** watchdog: abort when the sender goes silent *)
  mutable linger_deadline : int;  (** meaningful only in [Lingering] *)
  mutable state : state;
}

let count_garbage ~probe (counters : Protocol.Counters.t) reason =
  Obs.Probe.reject probe reason;
  match reason with
  | Packet.Codec.Bad_header_checksum | Packet.Codec.Bad_payload_checksum ->
      counters.Protocol.Counters.corrupt_detected <-
        counters.Protocol.Counters.corrupt_detected + 1
  | _ ->
      counters.Protocol.Counters.garbage_received <-
        counters.Protocol.Counters.garbage_received + 1

let transfer_id t = t.transfer_id
let counters t = t.counters
let probe t = t.probe
let total_bytes t = t.total_bytes
let stripe t = t.stripe

let total_packets t =
  (t.total_bytes + t.packet_bytes - 1) / t.packet_bytes

let completed t =
  match t.state with Lingering c | Closed c -> Some c | Running -> None

let status t =
  match t.state with
  | Running -> `Running
  | Lingering _ -> `Lingering
  | Closed completion -> `Done completion

let next_deadline t =
  match t.state with
  | Closed _ -> None
  | Lingering _ -> Some t.linger_deadline
  | Running -> (
      match t.machine_deadline with
      | None -> Some t.idle_deadline
      | Some d -> Some (min d t.idle_deadline))

let reset_idle t ~now = t.idle_deadline <- now + t.idle_timeout_ns

(* Deliveries blit into the pre-sized buffer. A payload whose length does not
   match the geometry (a hostile or miscounting sender slipping a valid CRC
   past the codec) is counted and dropped instead of raising: one bad flow
   must never take a multi-flow server down, and the whole-segment CRC check
   at completion catches the hole. *)
let deliver t ~seq ~payload =
  Obs.Probe.deliver t.probe ~seq;
  let offset = seq * t.packet_bytes in
  let expected =
    if offset < 0 || offset >= t.total_bytes then -1
    else min t.packet_bytes (t.total_bytes - offset)
  in
  if String.length payload <> expected then begin
    Log.warn (fun f ->
        f "flow %d: packet %d carries %d bytes, expected %d — dropped" t.transfer_id seq
          (String.length payload) expected);
    t.counters.Protocol.Counters.garbage_received <-
      t.counters.Protocol.Counters.garbage_received + 1
  end
  else Bytes.blit_string payload 0 t.buffer offset expected

let execute t ~now action acc =
  match action with
  | Protocol.Action.Send m -> Transmit m :: acc
  | Protocol.Action.Arm_timer ns ->
      t.machine_deadline <- Some (now + ns);
      acc
  | Protocol.Action.Stop_timer ->
      t.machine_deadline <- None;
      acc
  | Protocol.Action.Deliver { seq; payload } ->
      deliver t ~seq ~payload;
      acc
  | Protocol.Action.Complete _ -> acc

let run_actions t ~now actions =
  List.rev (List.fold_left (fun acc a -> execute t ~now a acc) [] actions)

let completion_of_machine t =
  let outcome =
    Option.value (t.machine.Protocol.Machine.outcome ()) ~default:Protocol.Action.Success
  in
  let data = Bytes.to_string t.buffer in
  let integrity =
    match (outcome, t.data_crc) with
    | Protocol.Action.Success, Some expected ->
        if Packet.Checksum.crc32_string data = expected then Verified else Mismatch
    | Protocol.Action.Success, None -> Not_carried
    | _, _ -> Not_carried
  in
  let data = match outcome with Protocol.Action.Success -> data | _ -> "" in
  { data; transfer_id = t.transfer_id; counters = t.counters; integrity; outcome }

let close t completion =
  Obs.Probe.complete t.probe completion.outcome;
  (match completion.outcome with
  | Protocol.Action.Success -> ()
  | outcome ->
      ignore
        (Obs.Probe.postmortem t.probe
           ~reason:(Format.asprintf "flow: %a" Protocol.Action.pp_outcome outcome)
          : string option));
  t.state <- Closed completion

(* After the machine reports completion the flow lingers: a sender whose
   final ack was lost re-sends its terminator, and the machine must keep
   answering for a grace period or the sender times out spuriously. *)
let on_machine_settled t ~now =
  let completion = completion_of_machine t in
  match completion.outcome with
  | Protocol.Action.Success ->
      t.machine_deadline <- None;
      t.linger_deadline <- now + t.linger_ns;
      t.state <- Lingering completion
  | _ -> close t completion

let abort t ~outcome =
  let completion =
    { data = ""; transfer_id = t.transfer_id; counters = t.counters; integrity = Not_carried;
      outcome }
  in
  close t completion

let default_max_transfer_bytes = 256 * 1024 * 1024

let create ?fallback_suite ?(tuning = Protocol.Tuning.wire_default) ?budget
    ?idle_timeout_ns ?linger_ns ?(max_transfer_bytes = default_max_transfer_bytes) ~probe
    ~counters ~now req =
  if req.Packet.Message.kind <> Packet.Kind.Req then Error `Not_a_req
  else
    match Suite_codec.decode req.Packet.Message.payload with
    | None -> Error `Bad_geometry
    | Some info ->
        let packet_bytes = info.Suite_codec.packet_bytes in
        let total_bytes = info.Suite_codec.total_bytes in
        if packet_bytes <= 0 || total_bytes <= 0 || total_bytes > max_transfer_bytes then
          Error `Bad_geometry
        else begin
          let transfer_id = req.Packet.Message.transfer_id in
          let suite =
            match (info.Suite_codec.suite, fallback_suite) with
            | Some carried, _ -> carried (* the wire wins: both ends must match *)
            | None, Some fallback -> fallback
            | None, None -> Protocol.Suite.Blast Protocol.Blast.Go_back_n
          in
          (* A budget-stamped (wire v2) REQ asks for adaptive trains, and
             the receiver always obliges — answering with budget-stamped
             ACK/NACKs is how it sheds load through the protocol. A plain
             v1 REQ pins the flow to the fixed regime whatever this server
             prefers: the sender cannot parse budgets it never asked for. *)
          let adaptive_req = Packet.Message.budget req <> None in
          let retransmit_ns = Protocol.Tuning.retransmit_ns tuning in
          let max_attempts = Protocol.Tuning.max_attempts tuning in
          let tuning =
            if adaptive_req then
              if Protocol.Tuning.is_adaptive tuning then tuning
              else Protocol.Tuning.adaptive ~retransmit_ns ~max_attempts ()
            else Protocol.Tuning.negotiate_down tuning
          in
          let total_packets = (total_bytes + packet_bytes - 1) / packet_bytes in
          let config =
            Protocol.Config.make ~transfer_id ~packet_bytes ~tuning ~total_packets ()
          in
          let budget_now () =
            match budget with
            | Some f -> f ()
            | None -> (
                match Protocol.Tuning.aimd tuning with
                | Some a -> a.Protocol.Tuning.max_train
                | None -> 0xFFFF)
          in
          let machine = Protocol.Suite.receiver suite ~counters ~budget:budget_now config in
          let idle_timeout_ns =
            Option.value idle_timeout_ns ~default:(max_attempts * retransmit_ns)
          in
          let linger_ns = Option.value linger_ns ~default:(3 * retransmit_ns) in
          let handshake_ack =
            let ack = Packet.Message.ack ~transfer_id ~seq:0 ~total:total_packets in
            if adaptive_req then Packet.Message.with_budget ack (max 0 (budget_now ()))
            else ack
          in
          let t =
            {
              transfer_id;
              machine;
              counters;
              probe;
              handshake_ack;
              buffer = Bytes.create total_bytes;
              packet_bytes;
              total_bytes;
              data_crc = info.Suite_codec.data_crc;
              stripe = info.Suite_codec.stripe;
              idle_timeout_ns;
              linger_ns;
              machine_deadline = None;
              idle_deadline = now + idle_timeout_ns;
              linger_deadline = 0;
              state = Running;
            }
          in
          Obs.Probe.rx probe req;
          let actions = run_actions t ~now (machine.Protocol.Machine.start ()) in
          Ok (t, (Transmit t.handshake_ack :: actions))
        end

(* Does this REQ describe the transfer this flow is already receiving? A
   retransmitted handshake carries the same geometry and whole-segment CRC;
   a REQ from a restarted process that happened to reuse the ephemeral port
   and transfer id almost surely differs in one of them. (A restarted sender
   pushing the *identical* segment is indistinguishable from a duplicate —
   and harmless, since re-deliveries blit identical bytes.) *)
let same_request t req =
  req.Packet.Message.kind = Packet.Kind.Req
  &&
  match Suite_codec.decode req.Packet.Message.payload with
  | None -> false
  | Some info ->
      info.Suite_codec.packet_bytes = t.packet_bytes
      && info.Suite_codec.total_bytes = t.total_bytes
      && info.Suite_codec.data_crc = t.data_crc

let on_message t ~now message =
  if message.Packet.Message.transfer_id <> t.transfer_id then []
  else
    match t.state with
    | Closed _ -> []
    | Lingering _ ->
        (* Fixed deadline, as the single-flow server behaved: duplicates are
           answered but do not extend the linger. *)
        Obs.Probe.rx t.probe message;
        let actions =
          List.filter_map
            (function Protocol.Action.Send reply -> Some (Transmit reply) | _ -> None)
            (t.machine.Protocol.Machine.handle (Protocol.Action.Message message))
        in
        Obs.Probe.handled t.probe message;
        actions
    | Running ->
        reset_idle t ~now;
        Obs.Probe.rx t.probe message;
        (* A duplicate REQ means our handshake ack was lost: re-ack before
           the machine — which keys on the shared transfer id — sees it. *)
        if message.Packet.Message.kind = Packet.Kind.Req then begin
          Obs.Probe.handled t.probe message;
          [ Transmit t.handshake_ack ]
        end
        else begin
          let actions =
            run_actions t ~now (t.machine.Protocol.Machine.handle (Protocol.Action.Message message))
          in
          Obs.Probe.handled t.probe message;
          if t.machine.Protocol.Machine.is_complete () then on_machine_settled t ~now;
          actions
        end

let on_garbage t ~now reason =
  match t.state with
  | Closed _ -> ()
  | Lingering _ -> count_garbage ~probe:t.probe t.counters reason
  | Running ->
      reset_idle t ~now;
      count_garbage ~probe:t.probe t.counters reason;
      Log.debug (fun f ->
          f "flow %d: dropping undecodable datagram (%a)" t.transfer_id Packet.Codec.pp_error
            reason)

let on_tick t ~now =
  match t.state with
  | Closed _ -> []
  | Lingering completion ->
      if t.linger_deadline - now <= 0 then close t completion;
      []
  | Running -> (
      match t.machine_deadline with
      | Some d when d - now <= 0 ->
          t.machine_deadline <- None;
          Obs.Probe.timeout t.probe ();
          let actions =
            run_actions t ~now (t.machine.Protocol.Machine.handle Protocol.Action.Timeout)
          in
          if t.machine.Protocol.Machine.is_complete () then on_machine_settled t ~now;
          actions
      | _ ->
          if t.idle_deadline - now <= 0 then begin
            Log.debug (fun f ->
                f "flow %d: idle watchdog — no datagram for %.1f ms, aborting" t.transfer_id
                  (float_of_int t.idle_timeout_ns /. 1e6));
            Obs.Probe.timeout t.probe ~detail:"idle-watchdog" ();
            abort t ~outcome:Protocol.Action.Peer_unreachable
          end;
          [])

let force_done t ~now =
  ignore now;
  match t.state with
  | Closed completion -> completion
  | Lingering completion ->
      close t completion;
      completion
  | Running ->
      Obs.Probe.timeout t.probe ~detail:"forced-shutdown" ();
      abort t ~outcome:Protocol.Action.Peer_unreachable;
      (match t.state with
      | Closed completion -> completion
      | _ -> assert false)
