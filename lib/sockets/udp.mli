(** Thin UDP socket helpers (IPv4 loopback by default). *)

val create_socket : ?address:string -> unit -> Unix.file_descr * Unix.sockaddr
(** Binds a fresh datagram socket to an ephemeral port on [address]
    (default "127.0.0.1"); returns the socket and its bound address. *)

val close : Unix.file_descr -> unit
(** Idempotent close. *)

val now_ns : unit -> int
(** CLOCK_MONOTONIC in integer nanoseconds. Guaranteed never to step
    backwards — safe for RTT samples and retransmission deadlines — but not
    related to the wall clock; only differences are meaningful. *)

val send_message : Unix.file_descr -> Unix.sockaddr -> Packet.Message.t -> unit
(** Encodes and transmits one datagram. *)

val send_bytes : Unix.file_descr -> Unix.sockaddr -> bytes -> unit
(** Transmits raw bytes as one datagram — the fault-injection path, where the
    bytes on the wire are deliberately not a valid encoding. *)

val recv_message :
  ?timeout_ns:int ->
  Unix.file_descr ->
  [ `Message of Packet.Message.t * Unix.sockaddr
  | `Timeout
  | `Garbage of Packet.Codec.error ]
(** Waits up to [timeout_ns] (forever when omitted) for one datagram.
    [`Garbage] is a datagram that failed to decode, with the codec's reason —
    checksum rejections are corruption caught in flight and are counted
    separately from alien traffic by the peer loop. *)
