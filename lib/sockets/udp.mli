(** Thin UDP socket helpers (IPv4 loopback by default). *)

val create_socket :
  ?address:string ->
  ?port:int ->
  ?reuseport:bool ->
  unit ->
  Unix.file_descr * Unix.sockaddr
(** Binds a fresh datagram socket on [address] (default "127.0.0.1") at
    [port] (default 0 — an ephemeral port); returns the socket and its
    bound address. With [reuseport] (default false) the socket is created
    with [SO_REUSEPORT] before binding, so several sockets — one per
    engine shard — can share one port and let the kernel's 4-tuple hash
    spread flows across them. *)

val close : Unix.file_descr -> unit
(** Idempotent close. *)

val now_ns : unit -> int
(** CLOCK_MONOTONIC in integer nanoseconds. Guaranteed never to step
    backwards — safe for RTT samples and retransmission deadlines — but not
    related to the wall clock; only differences are meaningful. *)

type send_outcome =
  | Sent
  | Send_failed of Unix.error
      (** the datagram did not make it onto the wire for a transient,
          loss-equivalent reason ([EAGAIN]/[EWOULDBLOCK] on a non-blocking
          socket, [ENOBUFS], [ECONNREFUSED] from loopback's port-unreachable
          bounce, unreachable routes, or [EINTR] persisting past the retry
          budget). The protocol machines recover exactly as they would from
          a dropped packet, so callers count it and move on — it never
          raises, which is what keeps one dead flow from killing a
          multi-flow server. Genuine programming errors ([EBADF],
          [EINVAL], ...) still raise. *)

val send_message : Unix.file_descr -> Unix.sockaddr -> Packet.Message.t -> send_outcome
(** Encodes and transmits one datagram. [EINTR] is retried a bounded number
    of times — one shared budget for both send paths — before being
    surfaced as a loss. *)

val send_bytes : Unix.file_descr -> Unix.sockaddr -> bytes -> send_outcome
(** Transmits raw bytes as one datagram — the fault-injection path, where the
    bytes on the wire are deliberately not a valid encoding. *)

val max_datagram_bytes : int
(** Size of the receive buffers ([rx_buffer]): the UDP maximum, 64 KiB. *)

val rx_buffer : unit -> bytes
(** A fresh receive buffer for {!recv_message}. Hot loops allocate one and
    pass it to every call instead of paying a 64 KiB allocation per
    datagram; a buffer must not be shared between threads. *)

val recv_message :
  ?timeout_ns:int ->
  ?buffer:bytes ->
  Unix.file_descr ->
  [ `Message of Packet.Message.t * Unix.sockaddr
  | `Timeout
  | `Garbage of Packet.Codec.error ]
(** Waits up to [timeout_ns] (forever when omitted) for one datagram.
    [`Garbage] is a datagram that failed to decode, with the codec's reason —
    checksum rejections are corruption caught in flight and are counted
    separately from alien traffic by the peer loop. [buffer] (from
    {!rx_buffer}) is scratch space reused across calls — the default path
    for every hot loop in this library, enforced by the bench's [rx_alloc]
    regression assertion (≤ 4 KB allocated per datagram). Omitting it
    allocates a fresh 64 KiB buffer per call and is only acceptable for
    one-shot callers. *)
