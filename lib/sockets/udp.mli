(** Thin UDP socket helpers (IPv4 loopback by default). *)

val create_socket : ?address:string -> unit -> Unix.file_descr * Unix.sockaddr
(** Binds a fresh datagram socket to an ephemeral port on [address]
    (default "127.0.0.1"); returns the socket and its bound address. *)

val close : Unix.file_descr -> unit
(** Idempotent close. *)

val now_ns : unit -> int
(** Monotonic-enough wall clock in integer nanoseconds. *)

val send_message : Unix.file_descr -> Unix.sockaddr -> Packet.Message.t -> unit
(** Encodes and transmits one datagram. *)

val recv_message :
  ?timeout_ns:int ->
  Unix.file_descr ->
  [ `Message of Packet.Message.t * Unix.sockaddr | `Timeout | `Garbage ]
(** Waits up to [timeout_ns] (forever when omitted) for one datagram.
    [`Garbage] is a datagram that failed to decode — the caller usually just
    loops. *)
