(** Wire encoding of the transfer geometry, the protocol suite, and an
    end-to-end checksum of the whole data segment, carried in the REQ
    handshake.

    Carrying the suite means the two ends always run matching machines; the
    whole-segment CRC is Spector's suggestion (the paper's reference [18]):
    per-packet link CRCs do not protect against bugs or reordering between
    the interface and the final buffer, a software checksum over the
    reassembled data does. *)

type info = {
  packet_bytes : int;
  total_bytes : int;
  suite : Protocol.Suite.t option;
  data_crc : int32 option;  (** CRC-32 of the entire data segment *)
  stripe : Packet.Stripe.t option;
      (** ring transfers: which slice of which object this flow carries *)
}

val encode :
  ?data_crc:int32 ->
  ?stripe:Packet.Stripe.t ->
  packet_bytes:int ->
  total_bytes:int ->
  Protocol.Suite.t ->
  string
(** Raises [Invalid_argument] if [stripe] is given without [data_crc]: a
    striped sub-transfer must be CRC-verifiable end to end. *)

val decode : string -> info option
(** Accepts the bare 8-byte geometry (an older or foreign sender), the
    14-byte geometry+suite form, the full 18-byte form with the data CRC,
    and the 30-byte striped form appending {!Packet.Stripe.encode_ext};
    [None] on malformed input. *)
