(** Chaos soak campaign over real UDP loopback.

    Each run pits one protocol suite against one {!Faults.Scenario.t}: a
    receiver thread behind its own Netem serves a single transfer while the
    sender pushes seeded random data through another Netem. Both endpoints
    are watchdog-bounded, so a run always terminates. The run then checks the
    robustness invariant this PR exists to enforce:

    - a successful send implies the receiver verified the whole-segment CRC
      and the delivered bytes equal the sent bytes;
    - the receiver never completes with a CRC [Mismatch];
    - a failed send is clean ([Too_many_attempts] or [Peer_unreachable])
      within the attempt bound — never a hang, never an exception. *)

type run = {
  suite : Protocol.Suite.t;
  scenario : Faults.Scenario.t;
  seed : int;
  bytes : int;  (** transfer size *)
  send : Peer.send_result option;  (** [None]: the sender raised *)
  received : Peer.receive_result option;  (** [None]: the receiver raised *)
  sender_faults : Faults.Netem.stats;
  receiver_faults : Faults.Netem.stats;
  violation : string option;  (** invariant breach, [None] when the run is clean *)
}

val ok : run -> bool
(** [violation = None]. *)

val outcome_name : run -> string
(** Short label for the sender outcome ("success", "too many attempts", ...). *)

val run_one :
  ?packet_bytes:int ->
  ?tuning:Protocol.Tuning.t ->
  ?bytes:int ->
  ?ctx:Io_ctx.t ->
  seed:int ->
  suite:Protocol.Suite.t ->
  scenario:Faults.Scenario.t ->
  unit ->
  run
(** One transfer, fully deterministic in [seed] modulo scheduling noise.
    Defaults are sized for a fast soak: 6000 bytes in 512-byte packets,
    fixed tuning with an 8 ms retransmission interval and 30 attempts
    ([tuning] supersedes any tuning already in [ctx] — both endpoints must
    share it).

    [ctx] carries the shared telemetry sinks and the batching switch; each
    endpoint gets a derived context with its own seeded Netem in the faults
    slot ([ctx.faults] from the caller is superseded). [ctx.recorder] is
    shared by both endpoint threads (it is thread-safe): sender events land
    on lane ["sender"], receiver events on ["receiver"], fault injections
    included. On an invariant violation the ring is dumped as a postmortem
    JSONL journal. [ctx.metrics] receives both sides' counter records,
    labelled by [side] with [transport=udp]. *)

val all_suites : Protocol.Suite.t list
(** The seven suite configurations the soak exercises: stop-and-wait,
    unbounded sliding window, the four blast strategies, and a multi-blast. *)

val run_campaign :
  ?packet_bytes:int ->
  ?tuning:Protocol.Tuning.t ->
  ?bytes:int ->
  ?ctx:Io_ctx.t ->
  ?suites:Protocol.Suite.t list ->
  ?scenarios:Faults.Scenario.t list ->
  ?iters:int ->
  ?seed:int ->
  ?progress:(run -> unit) ->
  ?pool:Exec.Pool.t ->
  ?jobs:int ->
  unit ->
  run list
(** The full cross product [suites x scenarios x iters], derived seeds per
    run, in cross-product order. Cells run on a domain pool ([pool]/[jobs],
    see {!Exec.Pool}); per-cell seeds depend only on the cell's position, so
    the set of runs is independent of the parallelism. [progress] fires
    after each run completes (serialized under a lock, in completion
    order). *)

val violations : run list -> run list
val completed : run list -> int
(** Number of runs whose sender reached [Success]. *)
