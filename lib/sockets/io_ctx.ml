type t = {
  faults : Faults.Netem.t option;
  recorder : Obs.Recorder.t option;
  metrics : Obs.Metrics.t option;
  clock : unit -> int;
  batch : bool;
}

let make ?faults ?recorder ?metrics ?(clock = Udp.now_ns) ?batch () =
  let batch = match batch with Some b -> b | None -> Batch.env_enabled () in
  { faults; recorder; metrics; clock; batch }

let default () = make ()
