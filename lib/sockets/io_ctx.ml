type t = {
  faults : Faults.Netem.t option;
  recorder : Obs.Recorder.t option;
  metrics : Obs.Metrics.t option;
  clock : unit -> int;
  batch : bool;
  tuning : Protocol.Tuning.t;
}

let make ?faults ?recorder ?metrics ?(clock = Udp.now_ns) ?batch
    ?(tuning = Protocol.Tuning.wire_default) () =
  let batch = match batch with Some b -> b | None -> Batch.env_enabled () in
  { faults; recorder; metrics; clock; batch; tuning }

let default () = make ()
