/* Batched datagram I/O: sendmmsg(2) / recvmmsg(2).

   The blast hot path pays one syscall per datagram through Unix.sendto /
   Unix.recvfrom — the modern analogue of the paper's per-packet "copy into
   the interface" cost. These stubs submit a whole packet train in one
   kernel crossing.

   Portability contract (the OCaml side, Batch, enforces the fallback):
   - compile-time: the syscalls are Linux-only, so everything is gated on
     __linux__ and other platforms get a stub that reports "unsupported";
   - run-time: a Linux build running on a kernel without the syscalls gets
     ENOSYS, which is surfaced as the same "unsupported" code (-2), never an
     exception.

   Both stubs pass MSG_DONTWAIT and therefore never block, which is why they
   can keep the OCaml runtime lock: no GC can move the iovec targets between
   building the vectors and the syscall returning, so the Bytes buffers are
   used in place with zero copies.

   Return conventions (negative codes, never an exception — the OCaml caller
   resolves errors through the one-datagram path so error semantics stay
   identical to the unbatched transport):
     sendmmsg:  n >= 0  datagrams accepted by the kernel
                -1      error on the *first* datagram (caller resolves it
                        through Unix.sendto and carries on)
                -2      unsupported (non-Linux build, or runtime ENOSYS)
     recvmmsg:  n >= 0  datagrams received
                -1      nothing ready (EAGAIN/EWOULDBLOCK/EINTR)
                -2      unsupported
                -3      pending ICMP error consumed (ECONNREFUSED) — retry
                -4      genuine error (caller surfaces it via Unix.recvfrom)

   Metadata travels in one flat int array, 3 slots per datagram:
     meta[3i]   = datagram length (bytes)
     meta[3i+1] = IPv4 address, host byte order
     meta[3i+2] = UDP port, host byte order
   For sendmmsg the OCaml side fills all three; for recvmmsg the stub does. */

#define _GNU_SOURCE

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>

#include <errno.h>
#include <string.h>

#ifdef __linux__
#include <sys/types.h>
#include <sys/socket.h>
#include <netinet/in.h>
#endif

/* Hard cap on one submission; the OCaml side windows larger batches. Keeps
   the scratch vectors on the stack: 256 * (hdr + iovec + sockaddr) < 32 KiB. */
#define LANREPRO_MMSG_MAX 256

CAMLprim value lanrepro_mmsg_supported(value unit)
{
#ifdef __linux__
  (void)unit;
  return Val_true;
#else
  (void)unit;
  return Val_false;
#endif
}

/* (fd, off, n, bufs, meta) -> count or negative code. Sends entries
   [off, off+n) of [bufs]/[meta]. */
CAMLprim value lanrepro_sendmmsg(value vfd, value voff, value vn, value vbufs, value vmeta)
{
#ifdef __linux__
  int off = Int_val(voff);
  int n = Int_val(vn);
  struct mmsghdr msgs[LANREPRO_MMSG_MAX];
  struct iovec iov[LANREPRO_MMSG_MAX];
  struct sockaddr_in sin[LANREPRO_MMSG_MAX];
  int i, r;
  if (n <= 0) return Val_int(0);
  if (n > LANREPRO_MMSG_MAX) n = LANREPRO_MMSG_MAX;
  memset(msgs, 0, (size_t)n * sizeof(struct mmsghdr));
  for (i = 0; i < n; i++) {
    int j = off + i;
    memset(&sin[i], 0, sizeof(sin[i]));
    sin[i].sin_family = AF_INET;
    sin[i].sin_addr.s_addr = htonl((uint32_t)Long_val(Field(vmeta, 3 * j + 1)));
    sin[i].sin_port = htons((uint16_t)Long_val(Field(vmeta, 3 * j + 2)));
    iov[i].iov_base = Bytes_val(Field(vbufs, j));
    iov[i].iov_len = (size_t)Long_val(Field(vmeta, 3 * j));
    msgs[i].msg_hdr.msg_name = &sin[i];
    msgs[i].msg_hdr.msg_namelen = sizeof(sin[i]);
    msgs[i].msg_hdr.msg_iov = &iov[i];
    msgs[i].msg_hdr.msg_iovlen = 1;
  }
  r = sendmmsg(Int_val(vfd), msgs, (unsigned int)n, MSG_DONTWAIT);
  if (r >= 0) return Val_int(r);
  if (errno == ENOSYS) return Val_int(-2);
  return Val_int(-1);
#else
  (void)vfd; (void)voff; (void)vn; (void)vbufs; (void)vmeta;
  return Val_int(-2);
#endif
}

/* (fd, n, bufs, meta) -> count or negative code. Fills slots [0, n) of
   [bufs] and the matching [meta] triples. Every buffer must be
   max-datagram-sized; a larger datagram would otherwise be silently
   truncated (MSG_TRUNC), which the wire codec would then misreport. */
CAMLprim value lanrepro_recvmmsg(value vfd, value vn, value vbufs, value vmeta)
{
#ifdef __linux__
  int n = Int_val(vn);
  struct mmsghdr msgs[LANREPRO_MMSG_MAX];
  struct iovec iov[LANREPRO_MMSG_MAX];
  struct sockaddr_in sin[LANREPRO_MMSG_MAX];
  int i, r;
  if (n <= 0) return Val_int(0);
  if (n > LANREPRO_MMSG_MAX) n = LANREPRO_MMSG_MAX;
  memset(msgs, 0, (size_t)n * sizeof(struct mmsghdr));
  for (i = 0; i < n; i++) {
    iov[i].iov_base = Bytes_val(Field(vbufs, i));
    iov[i].iov_len = caml_string_length(Field(vbufs, i));
    msgs[i].msg_hdr.msg_name = &sin[i];
    msgs[i].msg_hdr.msg_namelen = sizeof(sin[i]);
    msgs[i].msg_hdr.msg_iov = &iov[i];
    msgs[i].msg_hdr.msg_iovlen = 1;
  }
  r = recvmmsg(Int_val(vfd), msgs, (unsigned int)n, MSG_DONTWAIT, NULL);
  if (r < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return Val_int(-1);
    if (errno == ECONNREFUSED) return Val_int(-3);
    if (errno == ENOSYS) return Val_int(-2);
    return Val_int(-4);
  }
  for (i = 0; i < r; i++) {
    long addr = 0, port = 0;
    if (msgs[i].msg_hdr.msg_namelen >= sizeof(struct sockaddr_in)
        && sin[i].sin_family == AF_INET) {
      addr = (long)ntohl(sin[i].sin_addr.s_addr);
      port = (long)ntohs(sin[i].sin_port);
    }
    /* Immediates only: no write barrier needed on an int array. */
    Field(vmeta, 3 * i) = Val_long((long)msgs[i].msg_len);
    Field(vmeta, 3 * i + 1) = Val_long(addr);
    Field(vmeta, 3 * i + 2) = Val_long(port);
  }
  return Val_int(r);
#else
  (void)vfd; (void)vn; (void)vbufs; (void)vmeta;
  return Val_int(-2);
#endif
}
