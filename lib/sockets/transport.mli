(** The datagram transport interface: one record of operations that every
    protocol loop — the sender path in {!Peer}, the single-flow receiver,
    and the multiplexed [Server.Engine] — programs against.

    Two interpreters exist: {!udp} wraps a real socket (with optional
    [sendmmsg]/[recvmmsg] batching, exactly the former hard-wired fast
    path), and [Memnet.Net.transport] runs the same loops over an in-memory
    network under [Eventsim] virtual time. Protocol code cannot tell them
    apart, which is what makes whole-system deterministic simulation
    possible: the code that serves real traffic is the code under test.

    A transport is single-owner: one loop calls [recv]/[poll] at a time,
    exactly as a socket had one reading loop before. *)

type view = {
  buf : Bytes.t;  (** valid only until the next [recv]/[poll] call *)
  len : int;
  from : Unix.sockaddr;
}

type t = {
  send : peer:Unix.sockaddr -> on_outcome:(Udp.send_outcome -> unit) -> bytes -> unit;
      (** queue or emit one datagram; [on_outcome] fires exactly once, at
          the latest by the next [flush] *)
  flush : unit -> unit;
      (** submit everything queued (a batched train); no-op otherwise *)
  recv : timeout_ns:int option -> [ `Timeout | `Datagram of view ];
      (** wait for the next datagram, at most [timeout_ns] ([None] waits
          forever). Blocking here is interpreter-defined: a thread blocks on
          [select], a simulated process suspends in virtual time. *)
  poll : unit -> [ `Empty | `Datagram of view ];
      (** non-blocking [recv] — the server drain loop *)
  sleep_ns : int -> unit;
      (** pacing and injected-delay sleeps, in the transport's notion of
          time *)
  wake : (unit -> unit) option;
      (** [Some w]: [w ()] makes a blocked [recv] return [`Timeout]
          promptly — callable from any thread, spurious wakes allowed. The
          capability is what lets a serving loop block indefinitely when
          idle and still honor a cross-thread stop. [None]: the transport
          cannot be woken, so loops that must remain stoppable keep a
          bounded wait. *)
}

val udp :
  ?batch:bool ->
  ?rx_capacity:int ->
  ?poller:Poller.t ->
  socket:Unix.file_descr ->
  unit ->
  t
(** The real-socket interpreter. Sets the socket non-blocking and bumps
    [SO_RCVBUF] best-effort (the multiplexed server's headroom against blast
    bursts). With [batch] (default {!Batch.env_enabled}) sends queue into a
    {!Batch} train flushed by [flush], and [poll] drains through a
    [recvmmsg] ring of [rx_capacity] slots (default 64, clamped to the stub
    maximum); otherwise every operation is one syscall. Transient receive
    errors are absorbed: a pending ICMP port-unreachable is consumed and the
    wait continues.

    With [poller] the socket is registered on it for edge-triggered
    readiness, the blocking wait runs through {!Poller.wait} instead of
    [Unix.select], and [wake] is provided via {!Poller.wake}. The caller
    owns the poller and closes it after the transport's last use. Without
    [poller], behavior is the historical select wait and [wake] is
    [None]. *)

val recv_message :
  t ->
  ?timeout_ns:int ->
  unit ->
  [ `Timeout
  | `Message of Packet.Message.t * Unix.sockaddr
  | `Garbage of Packet.Codec.error ]
(** [recv] plus the codec: the one decode step every loop performed by
    hand. *)
