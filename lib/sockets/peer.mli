(** Bulk transfer over real UDP sockets.

    The same protocol machines that drive the simulator run here against the
    operating system's network stack. A transfer is preceded by a reliable
    handshake: the sender repeats a geometry-carrying [REQ] until the
    receiver answers with [ACK seq=0]; the receiver sizes its buffer from the
    geometry — the V kernel's buffers-before-transfer contract — and then
    both sides run their machines.

    Fault injection, telemetry, the clock, the batching switch and the
    {!Protocol.Tuning.t} (timers, attempts, train adaptation, pacing) all
    travel in one {!Io_ctx.t} ([?ctx]); by default the context is empty with
    the monotonic clock, batching per the [LANREPRO_BATCH] knob, and
    {!Protocol.Tuning.wire_default}. Loopback never drops datagrams, so
    faults are injected at the endpoints: {!Lossy} for plain iid loss, or a
    {!Faults.Netem} (via [ctx.faults]) for the full adversarial pipeline —
    bursts, duplication, reordering, bit flips, truncation, delay.

    {b Adaptive trains.} With [ctx.tuning = Adaptive _] the sender announces
    itself by stamping a budget onto its REQ (wire v2). A budget on the
    handshake ACK confirms the adaptive regime: the blast runs under the
    {!Protocol.Adapt} AIMD controller, capped by the receiver-advertised
    budget on every NACK, with pacing gaps derived from the smoothed RTT. An
    old (v1-only) receiver never answers v2, so after two attempts the
    handshake alternates plain v1 REQs and a bare ACK negotiates the
    transfer down to fixed trains ({!Protocol.Tuning.negotiate_down}).

    {b Batched I/O.} With [ctx.batch] (the default), each burst of protocol
    sends — a blast round — goes out as one packet train through
    {!Batch.flush} ([sendmmsg]) instead of one syscall per datagram; partial
    kernel acceptance degrades to per-datagram loss accounting, never an
    exception. A paced sender (tuning pacing other than [No_pacing]) stays
    on the one-datagram path, since a train has no inter-packet gaps.

    {b No-hang guarantee.} Every entry point is bounded: the handshake gives
    up after the tuning's [max_attempts]; the machine loop carries an idle
    watchdog (default [max_attempts * retransmit_ns]) that trips when the
    far end stops sending datagrams; and both sides then return the clean
    [Peer_unreachable] outcome instead of blocking or raising. The only
    unbounded wait is [serve_one]'s initial listen for a REQ, and
    [accept_timeout_ns] bounds that too. *)

type send_result = {
  outcome : Protocol.Action.outcome;
  elapsed_ns : int;  (** handshake completion to transfer completion *)
  counters : Protocol.Counters.t;
  adaptive : bool;
      (** did the handshake settle on adaptive trains? [false] under fixed
          tuning, and for adaptive tuning negotiated down by a budget-less
          ACK — the signature of an old (v1-only) receiver. A live receiver
          always obliges an adaptive REQ, whatever its own tuning. *)
}

type integrity = Flow.integrity = Verified | Mismatch | Not_carried

type receive_result = {
  data : string;  (** the reassembled transfer; [""] on [Peer_unreachable] *)
  transfer_id : int;
  receive_counters : Protocol.Counters.t;
  integrity : integrity;
      (** result of the whole-segment software CRC the sender carries in its
          REQ — Spector's end-to-end check (paper reference [18]) *)
  receive_outcome : Protocol.Action.outcome;
      (** [Success] for a completed transfer; [Peer_unreachable] when the
          idle watchdog (or accept timeout) aborted the wait *)
}

val send_via :
  ?ctx:Io_ctx.t ->
  ?lossy:Lossy.t ->
  ?transfer_id:int ->
  ?packet_bytes:int ->
  ?rtt:Protocol.Rtt.t ->
  ?idle_timeout_ns:int ->
  ?stripe:Packet.Stripe.t ->
  transport:Transport.t ->
  peer:Unix.sockaddr ->
  suite:Protocol.Suite.t ->
  data:string ->
  unit ->
  send_result
(** The sender path against an abstract {!Transport.t}: handshake, machine
    loop, watchdog, telemetry — everything in {!send} except the socket.
    [ctx.clock] must be the transport's notion of time (virtual time for a
    memnet transport); [ctx.batch] is ignored, the transport already decided
    how it sends. This is the entry point the deterministic-simulation
    harness drives over an in-memory network. *)

val send :
  ?ctx:Io_ctx.t ->
  ?lossy:Lossy.t ->
  ?transfer_id:int ->
  ?packet_bytes:int ->
  ?rtt:Protocol.Rtt.t ->
  ?idle_timeout_ns:int ->
  ?stripe:Packet.Stripe.t ->
  socket:Unix.file_descr ->
  peer:Unix.sockaddr ->
  suite:Protocol.Suite.t ->
  data:string ->
  unit ->
  send_result
(** Pushes [data] to [peer] — with [stripe], as a ring sub-transfer whose
    REQ carries the {!Packet.Stripe} framing. Timers, attempts, train
    adaptation and pacing come from [ctx.tuning]; packets default to 1024
    bytes. When [transfer_id] is omitted a fresh process-unique id is drawn
    ({!Protocol.Config.fresh_transfer_id}), so concurrent senders from one
    process cannot collide on a server's [(sockaddr, transfer_id)] key. A
    handshake that exhausts its attempts returns [Peer_unreachable] (it does
    not raise). With [rtt], timeouts adapt to measured round trips instead
    of the fixed interval (adaptive tuning creates an estimator
    automatically); pacing sleeps after each data datagram so an unthrottled
    blast does not overrun the receiver's socket buffer (and disables
    batching).

    [ctx.faults] runs every outgoing datagram through a Netem pipeline (its
    injection count is surfaced in [counters.faults_injected]).
    [ctx.recorder] journals the sender's datagram events on lane ["sender"]
    (timestamps from [ctx.clock], normalized to the first event) and is
    dumped automatically on a non-[Success] outcome. [ctx.metrics] receives
    the counter record and an elapsed-time gauge, labelled
    [side=sender, transport=udp]. *)

val serve_one_via :
  ?ctx:Io_ctx.t ->
  ?lossy:Lossy.t ->
  ?linger_ns:int ->
  ?idle_timeout_ns:int ->
  ?accept_timeout_ns:int ->
  ?suite:Protocol.Suite.t ->
  transport:Transport.t ->
  unit ->
  receive_result
(** {!serve_one} against an abstract {!Transport.t} — the single-flow
    receiver the simulation harness can host on a memnet endpoint. Same
    clock caveat as {!send_via}. *)

val serve_one :
  ?ctx:Io_ctx.t ->
  ?lossy:Lossy.t ->
  ?linger_ns:int ->
  ?idle_timeout_ns:int ->
  ?accept_timeout_ns:int ->
  ?suite:Protocol.Suite.t ->
  socket:Unix.file_descr ->
  unit ->
  receive_result
(** Accepts one incoming transfer and returns the reassembled data. Timers
    come from [ctx.tuning]; after the transfer completes the receiver
    lingers for [linger_ns] (default 3x the retransmission interval) to
    re-acknowledge duplicate terminators from a sender whose final ack was
    lost. The protocol suite normally travels in the REQ, so both ends match
    automatically; [suite] is only a fallback for senders that omit it. An
    adaptive (budget-stamped) REQ is always honoured — see {!Flow.create}.

    Blocks until a [REQ] arrives unless [accept_timeout_ns] is given. Once a
    transfer is underway, a sender that goes silent for [idle_timeout_ns]
    (default [max_attempts * retransmit_ns]) trips the watchdog and the call
    returns with [receive_outcome = Peer_unreachable] — [serve_one] can no
    longer block indefinitely on a dead sender.

    [ctx.recorder] journals the receiver's datagram events on lane
    ["receiver"]; sharing one recorder between [send] and [serve_one] (the
    chaos soak does) is safe — it is thread-safe and the clock installation
    is idempotent. [ctx.metrics] receives the counter record labelled
    [side=receiver, transport=udp]. *)
