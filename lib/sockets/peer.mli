(** Bulk transfer over real UDP sockets.

    The same protocol machines that drive the simulator run here against the
    operating system's network stack. A transfer is preceded by a reliable
    handshake: the sender repeats a geometry-carrying [REQ] until the
    receiver answers with [ACK seq=0]; the receiver sizes its buffer from the
    geometry — the V kernel's buffers-before-transfer contract — and then
    both sides run their machines.

    Loopback never drops datagrams, so loss is injected at the endpoints with
    {!Lossy}. *)

type send_result = {
  outcome : Protocol.Action.outcome;
  elapsed_ns : int;  (** handshake completion to transfer completion *)
  counters : Protocol.Counters.t;
}

type integrity = Verified | Mismatch | Not_carried

type receive_result = {
  data : string;  (** the reassembled transfer *)
  transfer_id : int;
  receive_counters : Protocol.Counters.t;
  integrity : integrity;
      (** result of the whole-segment software CRC the sender carries in its
          REQ — Spector's end-to-end check (paper reference [18]) *)
}

val send :
  ?lossy:Lossy.t ->
  ?transfer_id:int ->
  ?packet_bytes:int ->
  ?retransmit_ns:int ->
  ?max_attempts:int ->
  ?rtt:Protocol.Rtt.t ->
  ?pacing_ns:int ->
  socket:Unix.file_descr ->
  peer:Unix.sockaddr ->
  suite:Protocol.Suite.t ->
  data:string ->
  unit ->
  send_result
(** Pushes [data] to [peer]. Raises [Failure] if the handshake never
    completes. Defaults: 1024-byte packets, 50 ms retransmission interval,
    50 attempts. With [rtt], timeouts adapt to measured round trips instead
    of the fixed interval; [pacing_ns] sleeps after each data datagram so an
    unthrottled blast does not overrun the receiver's socket buffer. *)

val serve_one :
  ?lossy:Lossy.t ->
  ?retransmit_ns:int ->
  ?max_attempts:int ->
  ?linger_ns:int ->
  ?suite:Protocol.Suite.t ->
  socket:Unix.file_descr ->
  unit ->
  receive_result
(** Accepts exactly one incoming transfer (blocking until a [REQ] arrives)
    and returns the reassembled data. After the transfer completes the
    receiver lingers for [linger_ns] (default 3x the retransmission interval)
    to re-acknowledge duplicate terminators from a sender whose final ack was
    lost. The protocol suite normally travels in the REQ, so both ends match
    automatically; [suite] is only a fallback for senders that omit it. *)
